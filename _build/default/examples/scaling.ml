(* Scaling the GMDJ: memory-bounded segments, parallel partitions, and
   cost-based plan choice.

   The paper notes that the GMDJ "can be computed at a well-defined
   cost" even when the base-values table exceeds memory (segmented
   evaluation), and that the operator "is well-suited to evaluation in a
   parallel or distributed DBMS environment".  This example demonstrates
   both on one analysis — per-user traffic totals over a large Flow
   table — plus the cost-based planner choosing between GMDJ and join
   plans.

   Run with: dune exec examples/scaling.exe *)

open Subql_relational
open Subql_gmdj
open Subql_workload

let attr = Expr.attr

let catalog =
  Netflow.generate
    {
      Netflow.default_config with
      Netflow.n_flows = 400_000;
      n_users = 2_000;
      n_source_ips = 1_000;
      n_dest_ips = 1_000;
    }

let base = Relation.rename "u" (Catalog.find catalog "User")

let detail = Relation.rename "f" (Catalog.find catalog "Flow")

let blocks =
  [
    Gmdj.block
      [
        Aggregate.sum (attr ~rel:"f" "NumBytes") "bytes_out";
        Aggregate.count_star "flows_out";
      ]
      (Expr.eq (attr ~rel:"f" "SourceIP") (attr ~rel:"u" "IPAddress"));
    Gmdj.block
      [ Aggregate.sum (attr ~rel:"f" "NumBytes") "bytes_in" ]
      (Expr.eq (attr ~rel:"f" "DestIP") (attr ~rel:"u" "IPAddress"));
  ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  Format.printf "Per-user traffic analysis: %d users x %d flows, 3 aggregates@.@."
    (Relation.cardinality base) (Relation.cardinality detail);

  let t_whole, whole = time (fun () -> Gmdj.eval ~base ~detail blocks) in
  Format.printf "single scan, one domain:        %6.3fs@." t_whole;

  List.iter
    (fun segment_size ->
      let t, seg = time (fun () -> Gmdj.eval_segmented ~segment_size ~base ~detail blocks) in
      assert (Relation.equal_as_multiset whole seg);
      Format.printf "segmented (%4d users/segment): %6.3fs  (%d detail scans)@." segment_size t
        ((Relation.cardinality base + segment_size - 1) / segment_size))
    [ 500; 1000 ];

  let cores = Domain.recommended_domain_count () in
  let domain_counts =
    List.sort_uniq compare (List.filter (fun d -> d <= max 2 cores) [ 2; 4; 8 ])
  in
  if cores = 1 then
    Format.printf
      "(this machine reports a single core; partitioned evaluation is verified for@.\
      \ correctness but cannot speed up here)@.";
  List.iter
    (fun domains ->
      let t, par = time (fun () -> Gmdj.eval_partitioned ~domains ~base ~detail blocks) in
      assert (Relation.equal_as_multiset whole par);
      Format.printf "partitioned over %d domains:    %6.3fs  (speedup %.2fx on %d cores)@."
        domains t (t_whole /. t) cores)
    domain_counts;

  Format.printf "@.Distributed warehouse: the same analysis over %d sites@."
    4;
  let cluster = Distributed.Cluster.create ~sites:4 ~partition:(`Hash_on (Some "f", "SourceIP")) detail in
  List.iter
    (fun strategy ->
      let t, report = time (fun () -> Distributed.execute ~strategy cluster ~base blocks) in
      assert (Relation.equal_as_multiset whole report.Distributed.result);
      Format.printf "  %-18s %6.3fs  %9.2f MB shipped (%d messages)@."
        (Distributed.strategy_to_string strategy)
        t
        (float_of_int (Distributed.total_bytes report) /. 1e6)
        report.Distributed.messages)
    [ Distributed.Ship_all; Distributed.Ship_filtered; Distributed.Partial_aggregates ];

  Format.printf "@.Incremental maintenance: a day of new flows arrives@.";
  let view = Gmdj.Maintain.create ~base ~detail blocks in
  let fresh_flows =
    Relation.rename "f"
      (Catalog.find
         (Netflow.generate
            { Netflow.default_config with Netflow.n_flows = 50_000; n_users = 2_000;
              n_source_ips = 1_000; n_dest_ips = 1_000; seed = 99L })
         "Flow")
  in
  let t_delta, () = time (fun () -> Gmdj.Maintain.insert_detail view fresh_flows) in
  let t_recompute, recomputed =
    time (fun () ->
        Gmdj.eval ~base
          ~detail:
            (Ops.union_all detail fresh_flows)
          blocks)
  in
  assert (Relation.equal_as_multiset recomputed (Gmdj.Maintain.result view));
  Format.printf "  delta fold: %.3fs vs full recompute: %.3fs (%.1fx)@." t_delta t_recompute
    (t_recompute /. t_delta);

  Format.printf "@.Cost-based planning for a subquery over the same data:@.";
  let stmt =
    Subql_sql.Parser.parse
      "SELECT u.UserName FROM User u WHERE u.Quota < (SELECT SUM(f.NumBytes) FROM Flow f \
       WHERE f.SourceIP = u.IPAddress)"
  in
  List.iter
    (fun c ->
      Format.printf "  %-18s estimated cost %12.0f@." c.Subql.Planner.label
        c.Subql.Planner.estimate.Subql.Cost.cost)
    (Subql.Planner.candidates catalog stmt.Subql_sql.Parser.query);
  let t_auto, result = time (fun () -> Subql.Planner.run catalog stmt.Subql_sql.Parser.query) in
  Format.printf "  chosen plan evaluated in %.3fs (%d users over quota)@." t_auto
    (Relation.cardinality result)
