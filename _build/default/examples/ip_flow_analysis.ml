(* IP-flow analysis: Examples 2.2, 2.3 and 4.1 of the paper.

   Demonstrates the full pipeline on generated warehouse data:
   a nested query is translated by SubqueryToGMDJ, the optimizer
   coalesces the GMDJs, and the whole multi-subquery analysis runs in a
   single scan of the Flow table.

   Run with: dune exec examples/ip_flow_analysis.exe *)

open Subql_relational
open Subql_nested
open Subql_gmdj
open Subql_workload
module N = Nested_ast

let attr = Expr.attr

let catalog =
  Netflow.generate
    { Netflow.default_config with Netflow.n_flows = 50_000; n_users = 60; n_source_ips = 40; n_dest_ips = 40 }

let time label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Format.printf "  [%s: %.3fs]@." label (Unix.gettimeofday () -. t0);
  r

(* Example 2.2: "For each hour in which there exists traffic to a given
   destination, what fraction of the total traffic is due to web
   traffic?"  The base-values table B is itself a nested query. *)
let example_2_2 () =
  Format.printf "@.--- Example 2.2: hourly web fraction, hours filtered by a subquery ---@.";
  let dest = Netflow.ip 7 in
  let b_query =
    N.query ~base:(N.table "Hours") ~alias:"h"
      (N.exists
         ~where:
           (N.atom
              (Expr.conjoin
                 [
                   Expr.eq (attr ~rel:"fi" "DestIP") (Expr.str dest);
                   Expr.ge (attr ~rel:"fi" "StartTime") (attr ~rel:"h" "StartInterval");
                   Expr.lt (attr ~rel:"fi" "StartTime") (attr ~rel:"h" "EndInterval");
                 ]))
         (N.table "Flow") "fi")
  in
  (* B as a GMDJ expression (Example 3.1), then the outer complex OLAP
     aggregation as a further GMDJ on top of it. *)
  let b_alg = Subql.Optimize.optimize (Subql.Transform.to_algebra b_query) in
  let in_hour =
    Expr.and_
      (Expr.ge (attr ~rel:"f" "StartTime") (attr ~rel:"h" "StartInterval"))
      (Expr.lt (attr ~rel:"f" "StartTime") (attr ~rel:"h" "EndInterval"))
  in
  let plan =
    Subql.Algebra.Project
      ( [
          (attr ~rel:"h" "HourDsc", "hour");
          ( Expr.Arith
              ( Expr.Div,
                Expr.Arith (Expr.Mul, Expr.float 100.0, attr "sum1"),
                attr "sum2" ),
            "web_pct" );
        ],
        Subql.Algebra.Md
          {
            base = b_alg;
            detail = Subql.Algebra.Rename ("f", Subql.Algebra.Table "Flow");
            blocks =
              [
                Gmdj.block
                  [ Aggregate.sum (attr ~rel:"f" "NumBytes") "sum1" ]
                  (Expr.and_ in_hour (Expr.eq (attr ~rel:"f" "Protocol") (Expr.str "HTTP")));
                Gmdj.block [ Aggregate.sum (attr ~rel:"f" "NumBytes") "sum2" ] in_hour;
              ];
          } )
  in
  let result = time "evaluate" (fun () -> Subql.Eval.eval catalog plan) in
  Format.printf "%a@." Relation.pp (Ops.limit 8 result);
  Format.printf "(%d hours qualified; showing up to 8)@." (Relation.cardinality result)

(* Example 2.3 / 4.1: per-source traffic totals for sources selected by
   three EXISTS/NOT EXISTS subqueries over the same Flow table.  After
   coalescing, all three subqueries are answered by one GMDJ — a single
   scan of Flow computes every count. *)
let example_2_3 () =
  Format.printf "@.--- Examples 2.3 and 4.1: three subqueries, one scan ---@.";
  (* A sparser traffic matrix so that the three DestIP conditions are
     selective rather than vacuous. *)
  let catalog =
    Netflow.generate
      {
        Netflow.default_config with
        Netflow.n_flows = 50_000;
        n_source_ips = 2_000;
        n_dest_ips = 200;
      }
  in
  let ip1 = Netflow.ip 1 and ip2 = Netflow.ip 2 and ip3 = Netflow.ip 3 in
  let sub alias dest =
    N.atom
      (Expr.and_
         (Expr.eq (attr ~rel:alias "SourceIP") (attr ~rel:"f0" "SourceIP"))
         (Expr.eq (attr ~rel:alias "DestIP") (Expr.str dest)))
  in
  let b_query =
    N.query
      ~base:(N.Bproject { cols = [ "SourceIP" ]; distinct = true; input = N.table "Flow" })
      ~alias:"f0"
      (N.pand
         (N.not_exists ~where:(sub "f1" ip1) (N.table "Flow") "f1")
         (N.pand
            (N.exists ~where:(sub "f2" ip2) (N.table "Flow") "f2")
            (N.not_exists ~where:(sub "f3" ip3) (N.table "Flow") "f3")))
  in
  let basic = Subql.Transform.to_algebra b_query in
  let coalesced =
    Subql.Optimize.optimize ~flags:(Subql.Optimize.only ~coalesce:true ()) basic
  in
  let count_mds alg =
    let n = ref 0 in
    let rec go a =
      (match a with Subql.Algebra.Md _ | Subql.Algebra.Md_completed _ -> incr n | _ -> ());
      ignore (Subql.Optimize.map_children (fun c -> go c; c) a)
    in
    go alg;
    !n
  in
  Format.printf "GMDJ operators before coalescing: %d, after: %d@." (count_mds basic)
    (count_mds coalesced);
  let full_plan b_alg =
    Subql.Algebra.Project
      ( [
          (attr ~rel:"f0" "SourceIP", "source");
          (attr "sumTo", "bytes_sent");
          (attr "sumFrom", "bytes_received");
        ],
        Subql.Algebra.Md
          {
            base = b_alg;
            detail = Subql.Algebra.Rename ("f", Subql.Algebra.Table "Flow");
            blocks =
              [
                Gmdj.block
                  [ Aggregate.sum (attr ~rel:"f" "NumBytes") "sumTo" ]
                  (Expr.eq (attr ~rel:"f0" "SourceIP") (attr ~rel:"f" "SourceIP"));
                Gmdj.block
                  [ Aggregate.sum (attr ~rel:"f" "NumBytes") "sumFrom" ]
                  (Expr.eq (attr ~rel:"f0" "SourceIP") (attr ~rel:"f" "DestIP"));
              ];
          } )
  in
  let r1 = time "basic plan" (fun () -> Subql.Eval.eval catalog (full_plan basic)) in
  let r2 = time "coalesced plan" (fun () -> Subql.Eval.eval catalog (full_plan coalesced)) in
  assert (Relation.equal_as_multiset r1 r2);
  Format.printf "%a@." Relation.pp (Ops.limit 8 r2);
  Format.printf "(%d qualifying sources; plans agree)@." (Relation.cardinality r2)

let () =
  Format.printf "IP-flow warehouse: %d flows, %d hours, %d users@."
    (Relation.cardinality (Catalog.find catalog "Flow"))
    (Relation.cardinality (Catalog.find catalog "Hours"))
    (Relation.cardinality (Catalog.find catalog "User"));
  example_2_2 ();
  example_2_3 ()
