(* Quickstart: Example 2.1 / Figure 1 of the paper.

   "On an hourly basis, what fraction of the traffic is due to web
   traffic?" — a single GMDJ with two aggregation blocks over the same
   detail table, then the same question phrased as SQL with a subquery.

   Run with: dune exec examples/quickstart.exe *)

open Subql_relational
open Subql_gmdj

let hours =
  Relation.of_list
    (Schema.of_list
       [
         Schema.attr ~rel:"H" "HourDsc" Value.Tint;
         Schema.attr ~rel:"H" "StartInterval" Value.Tint;
         Schema.attr ~rel:"H" "EndInterval" Value.Tint;
       ])
    [
      [| Value.Int 1; Value.Int 0; Value.Int 60 |];
      [| Value.Int 2; Value.Int 61; Value.Int 120 |];
      [| Value.Int 3; Value.Int 121; Value.Int 180 |];
    ]

let flow =
  Relation.of_list
    (Schema.of_list
       [
         Schema.attr ~rel:"F" "StartTime" Value.Tint;
         Schema.attr ~rel:"F" "Protocol" Value.Tstring;
         Schema.attr ~rel:"F" "NumBytes" Value.Tint;
       ])
    [
      [| Value.Int 43; Value.Str "HTTP"; Value.Int 12 |];
      [| Value.Int 86; Value.Str "HTTP"; Value.Int 36 |];
      [| Value.Int 99; Value.Str "FTP"; Value.Int 48 |];
      [| Value.Int 132; Value.Str "HTTP"; Value.Int 24 |];
      [| Value.Int 156; Value.Str "HTTP"; Value.Int 24 |];
      [| Value.Int 161; Value.Str "FTP"; Value.Int 48 |];
    ]

let () =
  Format.printf "Input table Hours:@.%a@." Relation.pp hours;
  Format.printf "Input table Flow:@.%a@." Relation.pp flow;

  (* The GMDJ of Example 2.1: one operator, two aggregation blocks.
     θ1 restricts to web traffic within the hour, θ2 to all traffic. *)
  let in_hour =
    Expr.and_
      (Expr.ge (Expr.attr ~rel:"F" "StartTime") (Expr.attr ~rel:"H" "StartInterval"))
      (Expr.lt (Expr.attr ~rel:"F" "StartTime") (Expr.attr ~rel:"H" "EndInterval"))
  in
  let blocks =
    [
      Gmdj.block
        [ Aggregate.sum (Expr.attr ~rel:"F" "NumBytes") "sum1" ]
        (Expr.and_ in_hour (Expr.eq (Expr.attr ~rel:"F" "Protocol") (Expr.str "HTTP")));
      Gmdj.block [ Aggregate.sum (Expr.attr ~rel:"F" "NumBytes") "sum2" ] in_hour;
    ]
  in
  let md = Gmdj.eval ~base:hours ~detail:flow blocks in
  Format.printf "MD(Hours, Flow, (sum1, sum2), (θ1, θ2)) — the table of Figure 1:@.%a@."
    Relation.pp md;

  (* The fraction itself, computed with ordinary operators on top. *)
  let result =
    Ops.project
      [
        (Expr.attr ~rel:"H" "HourDsc", "hour");
        ( Expr.Arith
            ( Expr.Div,
              Expr.Arith (Expr.Mul, Expr.float 1.0, Expr.attr "sum1"),
              Expr.attr "sum2" ),
          "web_fraction" );
      ]
      md
  in
  Format.printf "Web-traffic fraction per hour:@.%a@." Relation.pp result;

  (* The same data queried through the SQL front-end: which hours have
     web traffic at all?  The subquery is translated to a GMDJ by
     SubqueryToGMDJ — no nesting remains in the plan. *)
  let catalog = Catalog.of_list [ ("Hours", hours); ("Flow", flow) ] in
  let stmt =
    Subql_sql.Parser.parse
      "SELECT h.HourDsc FROM Hours h WHERE EXISTS (SELECT * FROM Flow f WHERE \
       f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval AND f.Protocol = \
       'HTTP')"
  in
  let plan = Subql.Optimize.optimize (Subql.Transform.to_algebra stmt.Subql_sql.Parser.query) in
  Format.printf "Translated and optimized plan:@.@[%a@]@.@." Subql.Algebra.pp plan;
  Format.printf "Hours with web traffic:@.%a@." Relation.pp (Subql.Eval.eval catalog plan)
