examples/tpch_subqueries.mli:
