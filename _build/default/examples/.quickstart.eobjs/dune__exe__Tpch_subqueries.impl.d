examples/tpch_subqueries.ml: Catalog Format List Relation Subql Subql_nested Subql_relational Subql_sql Subql_unnest Subql_workload Tpc Unix
