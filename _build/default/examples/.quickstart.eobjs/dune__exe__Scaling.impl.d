examples/scaling.ml: Aggregate Catalog Distributed Domain Expr Format Gmdj List Netflow Ops Relation Subql Subql_gmdj Subql_relational Subql_sql Subql_workload Unix
