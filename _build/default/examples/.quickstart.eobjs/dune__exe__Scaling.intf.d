examples/scaling.mli:
