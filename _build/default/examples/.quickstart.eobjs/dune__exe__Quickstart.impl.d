examples/quickstart.ml: Aggregate Catalog Expr Format Gmdj Ops Relation Schema Subql Subql_gmdj Subql_relational Subql_sql Value
