examples/quickstart.mli:
