examples/ip_flow_analysis.mli:
