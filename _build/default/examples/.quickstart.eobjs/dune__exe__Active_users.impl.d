examples/active_users.ml: Expr Format Naive_eval Nested_ast Netflow Relation Subql Subql_nested Subql_relational Subql_workload Unix
