examples/ip_flow_analysis.ml: Aggregate Catalog Expr Format Gmdj Nested_ast Netflow Ops Relation Subql Subql_gmdj Subql_nested Subql_relational Subql_workload Unix
