bench/main.ml: Analyze Array Bechamel Benchmark Figures Format Hashtbl Int64 List Measure Printf Staged String Subql Sys Test Time Toolkit
