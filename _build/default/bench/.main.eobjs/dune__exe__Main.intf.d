bench/main.mli:
