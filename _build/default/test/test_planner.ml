(* Cost model and cost-based plan selection. *)

open Subql_relational
open Subql_nested
module N = Nested_ast

let attr = Expr.attr

(* --- Stats ---------------------------------------------------------------- *)

let catalog_of rows_o rows_i =
  Query_zoo.mk_catalog
    ( List.init rows_o (fun n -> [ Value.Int (n mod 10); Value.Int n ]),
      List.init rows_i (fun n -> [ Value.Int (n mod 10); Value.Int n ]),
      [] )

let test_stats () =
  let stats = Subql.Cost.Stats.of_catalog (catalog_of 50 200) in
  Alcotest.(check bool) "rows O" true (Subql.Cost.Stats.table_rows stats "O" = 50.0);
  Alcotest.(check bool) "rows I" true (Subql.Cost.Stats.table_rows stats "I" = 200.0);
  Alcotest.(check bool) "unknown default" true
    (Subql.Cost.Stats.table_rows stats "Nope" = 1000.0);
  Alcotest.(check (option (float 0.01))) "ndv of O.k" (Some 10.0)
    (Subql.Cost.Stats.column_distinct stats ~table:"O" ~column:"k");
  Alcotest.(check (option (float 0.01))) "ndv of O.x" (Some 50.0)
    (Subql.Cost.Stats.column_distinct stats ~table:"O" ~column:"x")

let test_selectivity () =
  let stats = Subql.Cost.Stats.of_catalog (catalog_of 50 200) in
  let origins = [ ("o", "O") ] in
  let sel e = Subql.Cost.selectivity stats ~origins e in
  Alcotest.(check (float 0.001)) "eq with ndv" 0.1
    (sel (Expr.eq (attr ~rel:"o" "k") (Expr.int 3)));
  Alcotest.(check (float 0.001)) "range" 0.33 (sel (Expr.gt (attr ~rel:"o" "k") (Expr.int 3)));
  Alcotest.(check bool) "conjunction multiplies" true
    (sel
       (Expr.and_
          (Expr.eq (attr ~rel:"o" "k") (Expr.int 3))
          (Expr.gt (attr ~rel:"o" "x") (Expr.int 0)))
    < 0.1);
  Alcotest.(check bool) "clamped" true (sel (Expr.bool false) > 0.0)

let test_estimate_monotonicity () =
  let stats = Subql.Cost.Stats.of_catalog (catalog_of 100 1000) in
  let config = Subql.Eval.default_config in
  let table = Subql.Algebra.Rename ("o", Subql.Algebra.Table "O") in
  let est_table = Subql.Cost.estimate stats ~config table in
  Alcotest.(check (float 0.01)) "table rows" 100.0 est_table.Subql.Cost.rows;
  let selected =
    Subql.Algebra.Select (Expr.eq (attr ~rel:"o" "k") (Expr.int 1), table)
  in
  let est_sel = Subql.Cost.estimate stats ~config selected in
  Alcotest.(check bool) "selection reduces rows" true
    (est_sel.Subql.Cost.rows < est_table.Subql.Cost.rows);
  Alcotest.(check bool) "selection adds cost" true
    (est_sel.Subql.Cost.cost > est_table.Subql.Cost.cost)

let test_nl_join_costs_more () =
  let stats = Subql.Cost.Stats.of_catalog (catalog_of 100 1000) in
  let join =
    Subql.Algebra.Join
      {
        kind = Subql.Algebra.Inner;
        cond = Expr.eq (attr ~rel:"o" "k") (attr ~rel:"i" "k");
        left = Subql.Algebra.Rename ("o", Subql.Algebra.Table "O");
        right = Subql.Algebra.Rename ("i", Subql.Algebra.Table "I");
      }
  in
  let hash = Subql.Cost.estimate stats ~config:Subql.Eval.default_config join in
  let nl = Subql.Cost.estimate stats ~config:Subql.Eval.unindexed_config join in
  Alcotest.(check bool) "nested loop dearer than hash" true
    (nl.Subql.Cost.cost > hash.Subql.Cost.cost);
  Alcotest.(check (float 0.01)) "same cardinality" hash.Subql.Cost.rows nl.Subql.Cost.rows

(* --- Planner ---------------------------------------------------------------- *)

let exists_query = List.assoc "exists" Query_zoo.queries

let test_candidates_enumerated () =
  let catalog = catalog_of 20 100 in
  let cands = Subql.Planner.candidates catalog exists_query in
  let labels = List.map (fun c -> c.Subql.Planner.label) cands in
  Alcotest.(check bool) "gmdj offered" true (List.mem "gmdj" labels);
  Alcotest.(check bool) "semijoin offered" true (List.mem "semijoin-unnest" labels);
  Alcotest.(check bool) "outerjoin offered" true (List.mem "outerjoin-unnest" labels);
  (* sorted by cost *)
  let costs = List.map (fun c -> c.Subql.Planner.estimate.Subql.Cost.cost) cands in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare costs = costs)

let test_semijoin_unavailable_for_disjunction () =
  let catalog = catalog_of 20 100 in
  let query = List.assoc "disjunction" Query_zoo.queries in
  let labels =
    List.map (fun c -> c.Subql.Planner.label) (Subql.Planner.candidates catalog query)
  in
  Alcotest.(check bool) "no semijoin plan" false (List.mem "semijoin-unnest" labels);
  Alcotest.(check bool) "gmdj still offered" true (List.mem "gmdj" labels)

let planner_agrees_prop db =
  let catalog = Query_zoo.mk_catalog db in
  List.for_all
    (fun (_, query) ->
      let reference = Naive_eval.eval catalog query in
      Relation.equal_as_multiset reference (Subql.Planner.run catalog query))
    Query_zoo.queries

let test_every_candidate_agrees () =
  let catalog = catalog_of 25 120 in
  List.iter
    (fun (name, query) ->
      let reference = Naive_eval.eval catalog query in
      List.iter
        (fun c ->
          let result = Subql.Eval.eval catalog c.Subql.Planner.plan in
          Alcotest.(check bool)
            (Printf.sprintf "%s via %s" name c.Subql.Planner.label)
            true
            (Relation.equal_as_multiset reference result))
        (Subql.Planner.candidates catalog query))
    Query_zoo.queries

(* --- Instrumented evaluation --------------------------------------------- *)

let test_eval_traced () =
  let catalog = catalog_of 30 200 in
  let query = List.assoc "exists" Query_zoo.queries in
  let plan = Subql.Optimize.optimize (Subql.Transform.to_algebra query) in
  let plain = Subql.Eval.eval catalog plan in
  let traced, trace = Subql.Eval.eval_traced catalog plan in
  Alcotest.(check bool) "same result" true (Relation.equal_as_multiset plain traced);
  Alcotest.(check int) "root cardinality recorded" (Relation.cardinality plain)
    trace.Subql.Eval.out_rows;
  let rec count t = 1 + List.fold_left (fun acc c -> acc + count c) 0 t.Subql.Eval.children in
  Alcotest.(check bool) "per-node traces" true (count trace >= 4);
  let rendered = Format.asprintf "%a" Subql.Eval.pp_trace trace in
  Alcotest.(check bool) "renders rows" true
    (String.length rendered > 0
    &&
    let re = Str.regexp_string "rows" in
    (try ignore (Str.search_forward re rendered 0); true with Not_found -> false))

let () =
  Alcotest.run "planner"
    [
      ( "cost",
        [
          Alcotest.test_case "catalog statistics" `Quick test_stats;
          Alcotest.test_case "selectivities" `Quick test_selectivity;
          Alcotest.test_case "estimate monotonicity" `Quick test_estimate_monotonicity;
          Alcotest.test_case "nested loop dearer" `Quick test_nl_join_costs_more;
        ] );
      ( "planner",
        [
          Alcotest.test_case "candidates enumerated" `Quick test_candidates_enumerated;
          Alcotest.test_case "semijoin gated by applicability" `Quick
            test_semijoin_unavailable_for_disjunction;
          Alcotest.test_case "every candidate agrees" `Quick test_every_candidate_agrees;
          Helpers.qtest ~count:40 "chosen plan agrees with naive" Query_zoo.db_gen
            planner_agrees_prop;
        ] );
      ("traced", [ Alcotest.test_case "instrumented evaluation" `Quick test_eval_traced ]);
    ]
