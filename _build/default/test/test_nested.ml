(* Nested query algebra: normalization, scope analysis, and the two
   naive evaluation modes. *)

open Subql_relational
open Subql_nested
module N = Nested_ast

let attr = Expr.attr

(* --- Normalization ----------------------------------------------------- *)

let sub_exists ?(alias = "i") ?(table = "I") where = N.exists ~where (N.table table) alias

let corr = N.atom (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k"))

let test_normalize_shapes () =
  let check name p =
    Alcotest.(check bool) name true (Normalize.is_normalized (Normalize.pred p))
  in
  check "not exists" (N.pnot (sub_exists corr));
  check "double negation" (N.pnot (N.pnot (sub_exists corr)));
  check "de morgan"
    (N.pnot (N.pand (sub_exists corr) (N.por (N.atom (Expr.bool true)) (sub_exists corr))));
  check "in" (N.in_ (attr ~rel:"o" "x") (N.table "I") "i" ~col:"y");
  check "negated all"
    (N.pnot (N.all_ (attr ~rel:"o" "x") Expr.Lt (N.table "I") "i" ~col:"y"));
  check "nested body" (sub_exists (N.pnot (sub_exists ~alias:"j" ~table:"J" corr)))

let test_normalize_flips () =
  (match Normalize.pred (N.pnot (sub_exists corr)) with
  | N.Sub { kind = N.Not_exists; _ } -> ()
  | p -> Alcotest.failf "expected NOT EXISTS, got %a" N.pp_pred p);
  (match Normalize.pred (N.pnot (N.pnot (sub_exists corr))) with
  | N.Sub { kind = N.Exists; _ } -> ()
  | p -> Alcotest.failf "expected EXISTS, got %a" N.pp_pred p);
  (match
     Normalize.pred (N.pnot (N.some_ (attr ~rel:"o" "x") Expr.Lt (N.table "I") "i" ~col:"y"))
   with
  | N.Sub { kind = N.Quant (_, Expr.Ge, N.Qall, "y"); _ } -> ()
  | p -> Alcotest.failf "expected >= ALL, got %a" N.pp_pred p);
  (match Normalize.pred (N.not_in (attr ~rel:"o" "x") (N.table "I") "i" ~col:"y") with
  | N.Sub { kind = N.Quant (_, Expr.Ne, N.Qall, "y"); _ } -> ()
  | p -> Alcotest.failf "expected <> ALL, got %a" N.pp_pred p);
  (match
     Normalize.pred (N.pnot (N.pand (N.atom (Expr.bool true)) (N.atom (Expr.bool false))))
   with
  | N.Por (N.Atom _, N.Atom _) -> ()
  | p -> Alcotest.failf "expected de-morganed OR, got %a" N.pp_pred p)

(* Normalization preserves semantics under the naive evaluator. *)
let normalize_semantics_prop db =
  let catalog = Query_zoo.mk_catalog db in
  List.for_all
    (fun (_, query) ->
      let normalized = Normalize.query query in
      Relation.equal_as_multiset (Naive_eval.eval catalog query)
        (Naive_eval.eval catalog normalized)
      && Normalize.is_normalized normalized.N.q_where)
    Query_zoo.queries

(* --- Scope analysis ----------------------------------------------------- *)

let test_scope_free_aliases () =
  let deep =
    N.Sub
      {
        kind = N.Exists;
        source = N.table "J";
        s_alias = "j";
        s_where =
          N.atom
            (Expr.conjoin
               [
                 Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k");
                 Expr.eq (attr ~rel:"j" "y") (attr ~rel:"o" "x");
                 Expr.gt (attr "local_bare") (Expr.int 0);
               ]);
      }
  in
  (match deep with
  | N.Sub s ->
    Alcotest.(check (list string)) "free" [ "i"; "o" ] (Scope.free_aliases_sub s);
    Alcotest.(check (list string)) "non-neighboring" [ "o" ]
      (Scope.non_neighboring ~enclosing:[ "i" ] s)
  | _ -> assert false);
  let with_lhs =
    N.Sub
      {
        kind = N.Cmp_agg (attr ~rel:"u" "q", Expr.Lt, Aggregate.Sum (attr ~rel:"f" "b"));
        source = N.table "Flow";
        s_alias = "f";
        s_where = N.Ptrue;
      }
  in
  match with_lhs with
  | N.Sub s -> Alcotest.(check (list string)) "lhs refs" [ "u" ] (Scope.free_aliases_sub s)
  | _ -> assert false

let test_scope_nested_binding () =
  (* An alias bound at an inner level is not free, even if it shadows
     nothing outside. *)
  let p =
    N.exists
      ~where:
        (N.exists
           ~where:(N.atom (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k")))
           (N.table "J") "j")
      (N.table "I") "i"
  in
  Alcotest.(check (list string)) "nothing free" [] (Scope.free_aliases_pred ~local:[] p)

(* --- Naive evaluation modes ---------------------------------------------- *)

let modes_agree_prop db =
  let catalog = Query_zoo.mk_catalog db in
  List.for_all
    (fun (_, query) ->
      Relation.equal_as_multiset
        (Naive_eval.eval ~mode:Naive_eval.Plain catalog query)
        (Naive_eval.eval ~mode:Naive_eval.Smart catalog query))
    Query_zoo.queries

let test_smart_examines_fewer_rows () =
  (* Equi-correlated EXISTS over a large inner table: Smart mode should
     touch far fewer inner rows thanks to its hash index + early exit. *)
  let rows n f = List.init n f in
  let db =
    ( rows 50 (fun i -> [ Value.Int i; Value.Int i ]),
      rows 2000 (fun i -> [ Value.Int (i mod 50); Value.Int i ]),
      [] )
  in
  let catalog = Query_zoo.mk_catalog db in
  let query = List.assoc "exists" Query_zoo.queries in
  let plain_stats = Naive_eval.fresh_stats () in
  let smart_stats = Naive_eval.fresh_stats () in
  let plain = Naive_eval.eval ~mode:Naive_eval.Plain ~stats:plain_stats catalog query in
  let smart = Naive_eval.eval ~mode:Naive_eval.Smart ~stats:smart_stats catalog query in
  Alcotest.(check bool) "same result" true (Relation.equal_as_multiset plain smart);
  Alcotest.(check bool)
    (Printf.sprintf "smart rows (%d) << plain rows (%d)"
       smart_stats.Naive_eval.inner_rows_examined plain_stats.Naive_eval.inner_rows_examined)
    true
    (smart_stats.Naive_eval.inner_rows_examined * 10
    < plain_stats.Naive_eval.inner_rows_examined)

let test_eval_base () =
  let catalog =
    Query_zoo.mk_catalog
      ([ [ Value.Int 1; Value.Int 1 ]; [ Value.Int 1; Value.Int 2 ]; [ Value.Int 2; Value.Int 3 ] ], [], [])
  in
  let base =
    N.Bproject
      {
        cols = [ "k" ];
        distinct = true;
        input = N.Bselect (Expr.gt (attr "x") (Expr.int 1), N.table "O");
      }
  in
  let rel = Naive_eval.eval_base catalog base in
  Alcotest.(check int) "select then distinct project" 2 (Relation.cardinality rel)

let test_unknown_table () =
  let catalog = Query_zoo.mk_catalog ([], [], []) in
  let query = N.query ~base:(N.table "Missing") ~alias:"m" N.Ptrue in
  match Naive_eval.eval catalog query with
  | exception Catalog.Unknown_table "Missing" -> ()
  | _ -> Alcotest.fail "expected Unknown_table"

let () =
  Alcotest.run "nested"
    [
      ( "normalize",
        [
          Alcotest.test_case "produces normal forms" `Quick test_normalize_shapes;
          Alcotest.test_case "flip rules" `Quick test_normalize_flips;
          Helpers.qtest ~count:60 "preserves semantics" Query_zoo.db_gen
            normalize_semantics_prop;
        ] );
      ( "scope",
        [
          Alcotest.test_case "free aliases" `Quick test_scope_free_aliases;
          Alcotest.test_case "inner bindings" `Quick test_scope_nested_binding;
        ] );
      ( "naive-eval",
        [
          Helpers.qtest ~count:60 "plain = smart" Query_zoo.db_gen modes_agree_prop;
          Alcotest.test_case "smart uses index + early exit" `Quick
            test_smart_examines_fewer_rows;
          Alcotest.test_case "base expressions" `Quick test_eval_base;
          Alcotest.test_case "unknown table" `Quick test_unknown_table;
        ] );
    ]
