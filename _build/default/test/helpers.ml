(* Shared fixtures and utilities for the test suites. *)

open Subql_relational

let v_int i = Value.Int i

let v_str s = Value.Str s

let schema attrs = Schema.of_list (List.map (fun (rel, name, ty) -> Schema.attr ~rel name ty) attrs)

let rel sch rows = Relation.of_list sch (List.map Array.of_list rows)

(* The Hours and Flow tables of Figure 1 / Example 2.1. *)

let hours_schema =
  schema
    [
      ("Hours", "HourDsc", Value.Tint);
      ("Hours", "StartInterval", Value.Tint);
      ("Hours", "EndInterval", Value.Tint);
    ]

let hours =
  rel hours_schema
    [
      [ v_int 1; v_int 0; v_int 60 ];
      [ v_int 2; v_int 61; v_int 120 ];
      [ v_int 3; v_int 121; v_int 180 ];
    ]

let flow_schema =
  schema
    [
      ("Flow", "StartTime", Value.Tint);
      ("Flow", "Protocol", Value.Tstring);
      ("Flow", "NumBytes", Value.Tint);
    ]

let flow =
  rel flow_schema
    [
      [ v_int 43; v_str "HTTP"; v_int 12 ];
      [ v_int 86; v_str "HTTP"; v_int 36 ];
      [ v_int 99; v_str "FTP"; v_int 48 ];
      [ v_int 132; v_str "HTTP"; v_int 24 ];
      [ v_int 156; v_str "HTTP"; v_int 24 ];
      [ v_int 161; v_str "FTP"; v_int 48 ];
    ]

let check_multiset_equal msg expected actual =
  if not (Relation.equal_as_multiset expected actual) then
    Alcotest.failf "%s:@.expected:@.%a@.actual:@.%a" msg Relation.pp expected Relation.pp
      actual

let relation_testable =
  Alcotest.testable Relation.pp Relation.equal_as_multiset

(* Deterministic pseudo-random relation generators for property tests. *)

module Gen = struct
  let small_int = QCheck2.Gen.int_range (-4) 8

  (* A value with occasional NULLs, to exercise 3VL paths. *)
  let value_with_nulls =
    QCheck2.Gen.(
      frequency [ (1, return Value.Null); (6, map (fun i -> Value.Int i) small_int) ])

  let tuple arity = QCheck2.Gen.(array_size (return arity) value_with_nulls)

  let rows arity = QCheck2.Gen.(list_size (int_range 0 24) (tuple arity))

  let relation_gen ~rel_name ~cols =
    let arity = List.length cols in
    QCheck2.Gen.map
      (fun rows ->
        Relation.of_list
          (Schema.of_list (List.map (fun c -> Schema.attr ~rel:rel_name c Value.Tint) cols))
          rows)
      (rows arity)
end

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
