(* Workload generators: determinism, schema conformance, and the knobs
   the experiments rely on. *)

open Subql_relational
open Subql_workload

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:8L in
  Alcotest.(check bool) "different seed differs" true (Rng.next a <> Rng.next c)

let test_rng_ranges () =
  let r = Rng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in inclusive range" true (v >= -5 && v <= 5);
    let f = Rng.float r in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done;
  (match Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 rejected")

let test_rng_rough_uniformity () =
  let r = Rng.create ~seed:3L in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Rng.int r 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%% (%d)" i count)
        true
        (abs (count - expected) < expected / 10))
    buckets

let test_rng_bernoulli_extremes () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0);
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:11L in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle r b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a);
  Alcotest.(check bool) "actually permuted" true (b <> a)

(* --- Netflow ------------------------------------------------------------- *)

let small_config =
  {
    Netflow.n_flows = 2_000;
    n_hours = 6;
    n_users = 40;
    n_source_ips = 20;
    n_dest_ips = 20;
    http_fraction = 0.5;
    user_ip_match_fraction = 1.0;
    seed = 9L;
  }

let test_netflow_shape () =
  let catalog = Netflow.generate small_config in
  let flow = Catalog.find catalog "Flow" in
  let hours = Catalog.find catalog "Hours" in
  let users = Catalog.find catalog "User" in
  Alcotest.(check int) "flows" 2_000 (Relation.cardinality flow);
  Alcotest.(check int) "hours" 6 (Relation.cardinality hours);
  Alcotest.(check int) "users" 40 (Relation.cardinality users);
  (* Every row conforms to the declared schema. *)
  ignore (Relation.create (Relation.schema flow) (Relation.rows flow));
  ignore (Relation.create (Relation.schema hours) (Relation.rows hours));
  ignore (Relation.create (Relation.schema users) (Relation.rows users))

let test_netflow_hours_partition () =
  let catalog = Netflow.generate small_config in
  let hours = Catalog.find catalog "Hours" in
  let flow = Catalog.find catalog "Flow" in
  (* Hours tile [0, horizon) without gaps, and every flow starts inside
     exactly one hour. *)
  let s = Relation.schema hours in
  let start_i = Schema.find s "StartInterval" and end_i = Schema.find s "EndInterval" in
  let sorted = Ops.sort ~by:[ ((None, "StartInterval"), `Asc) ] hours in
  let prev_end = ref (Value.Int 0) in
  Relation.iter
    (fun row ->
      Alcotest.(check bool) "contiguous" true (Value.equal row.(start_i) !prev_end);
      prev_end := row.(end_i))
    sorted;
  let fs = Relation.schema flow in
  let st = Schema.find fs "StartTime" in
  let horizon = match !prev_end with Value.Int h -> h | _ -> assert false in
  Relation.iter
    (fun row ->
      match row.(st) with
      | Value.Int t -> Alcotest.(check bool) "within horizon" true (t >= 0 && t < horizon)
      | _ -> Alcotest.fail "StartTime not an int")
    flow

let test_netflow_protocol_mix () =
  let catalog = Netflow.generate { small_config with Netflow.n_flows = 20_000 } in
  let flow = Catalog.find catalog "Flow" in
  let s = Relation.schema flow in
  let proto = Schema.find s "Protocol" in
  let http =
    Relation.fold
      (fun acc row -> if Value.equal row.(proto) (Value.Str "HTTP") then acc + 1 else acc)
      0 flow
  in
  let frac = float_of_int http /. 20_000.0 in
  Alcotest.(check bool) (Printf.sprintf "http fraction %.3f near 0.5" frac) true
    (frac > 0.45 && frac < 0.55)

let test_netflow_user_ips_match () =
  let catalog = Netflow.generate small_config in
  let users = Catalog.find catalog "User" in
  let s = Relation.schema users in
  let ip_i = Schema.find s "IPAddress" in
  let pool = List.init small_config.Netflow.n_source_ips Netflow.ip in
  Relation.iter
    (fun row ->
      match row.(ip_i) with
      | Value.Str ip -> Alcotest.(check bool) ip true (List.mem ip pool)
      | _ -> Alcotest.fail "IPAddress not a string")
    users

let test_netflow_deterministic () =
  let a = Netflow.generate small_config and b = Netflow.generate small_config in
  List.iter
    (fun t ->
      Alcotest.(check bool) t true
        (Relation.equal_as_multiset (Catalog.find a t) (Catalog.find b t)))
    [ "Flow"; "Hours"; "User" ];
  let c = Netflow.generate { small_config with Netflow.seed = 10L } in
  Alcotest.(check bool) "different seed differs" false
    (Relation.equal_as_multiset (Catalog.find a "Flow") (Catalog.find c "Flow"))

(* --- TPC ----------------------------------------------------------------- *)

let tpc_config = { Tpc.default_config with Tpc.customers = 100; orders = 600; lineitems = 1_500 }

let test_tpc_shape () =
  let catalog = Tpc.generate tpc_config in
  Alcotest.(check int) "customers" 100 (Relation.cardinality (Catalog.find catalog "Customer"));
  Alcotest.(check int) "orders" 600 (Relation.cardinality (Catalog.find catalog "Orders"));
  Alcotest.(check int) "lineitems" 1_500 (Relation.cardinality (Catalog.find catalog "Lineitem"))

let test_tpc_foreign_keys () =
  let catalog = Tpc.generate tpc_config in
  let orders = Catalog.find catalog "Orders" in
  let s = Relation.schema orders in
  let custkey = Schema.find s "o_custkey" in
  Relation.iter
    (fun row ->
      match row.(custkey) with
      | Value.Int k -> Alcotest.(check bool) "custkey in range" true (k >= 1 && k <= 100)
      | _ -> Alcotest.fail "o_custkey not an int")
    orders;
  let lineitem = Catalog.find catalog "Lineitem" in
  let ls = Relation.schema lineitem in
  let okey = Schema.find ls "l_orderkey" in
  Relation.iter
    (fun row ->
      match row.(okey) with
      | Value.Int k -> Alcotest.(check bool) "orderkey in range" true (k >= 1 && k <= 600)
      | _ -> Alcotest.fail "l_orderkey not an int")
    lineitem

let test_tpc_scaled () =
  let config = Tpc.scaled 0.0001 in
  Alcotest.(check int) "customers at sf 0.0001" 15 config.Tpc.customers;
  let catalog = Tpc.generate config in
  Alcotest.(check int) "generated" 15 (Relation.cardinality (Catalog.find catalog "Customer"))

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "rough uniformity" `Quick test_rng_rough_uniformity;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "netflow",
        [
          Alcotest.test_case "row counts and schemas" `Quick test_netflow_shape;
          Alcotest.test_case "hours partition the horizon" `Quick test_netflow_hours_partition;
          Alcotest.test_case "protocol mix" `Quick test_netflow_protocol_mix;
          Alcotest.test_case "user IPs from the pool" `Quick test_netflow_user_ips_match;
          Alcotest.test_case "deterministic in the seed" `Quick test_netflow_deterministic;
        ] );
      ( "tpc",
        [
          Alcotest.test_case "row counts" `Quick test_tpc_shape;
          Alcotest.test_case "foreign keys in range" `Quick test_tpc_foreign_keys;
          Alcotest.test_case "scale factor" `Quick test_tpc_scaled;
        ] );
    ]
