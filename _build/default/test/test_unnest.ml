(* Join/outer-join unnesting correctness: the classical semi-/anti-join
   plans and the general GMDJ-to-joins expansion must agree with the
   naive tuple-iteration semantics on the full query zoo. *)

open Subql_relational
open Subql_nested
module N = Nested_ast

let agree name query db =
  let catalog = Query_zoo.mk_catalog db in
  let reference = Naive_eval.eval catalog query in
  let check engine result =
    if Relation.equal_as_multiset reference result then true
    else begin
      Format.eprintf "engine %s disagrees on %s:@.reference:@.%a@.got:@.%a@." engine name
        Relation.pp reference Relation.pp result;
      false
    end
  in
  let joins_ok =
    check "unnest-via-joins" (Subql.Eval.eval catalog (Subql_unnest.Unnest.via_joins catalog query))
  in
  let joins_unindexed_ok =
    check "unnest-via-joins-unindexed"
      (Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
         (Subql_unnest.Unnest.via_joins catalog query))
  in
  let semi_ok =
    match Subql_unnest.Unnest.via_semijoins catalog query with
    | alg -> check "unnest-semijoins" (Subql.Eval.eval catalog alg)
    | exception Subql_unnest.Unnest.Not_applicable _ -> true
  in
  let best_ok = check "unnest-best" (Subql.Eval.eval catalog (Subql_unnest.Unnest.best catalog query)) in
  joins_ok && joins_unindexed_ok && semi_ok && best_ok

let property_tests =
  List.map
    (fun (name, query) ->
      Helpers.qtest ~count:80 ("agree: " ^ name) Query_zoo.db_gen (agree name query))
    Query_zoo.queries

(* The classical path must actually be exercised for the simple shapes. *)
let test_semijoin_applicability () =
  let applicable name =
    let query = List.assoc name Query_zoo.queries in
    let catalog = Query_zoo.mk_catalog ([], [], []) in
    match Subql_unnest.Unnest.via_semijoins catalog query with
    | _ -> true
    | exception Subql_unnest.Unnest.Not_applicable _ -> false
  in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " applicable") true (applicable name))
    [ "exists"; "not-exists"; "some"; "all-ne"; "scalar"; "agg-sum"; "two-subqueries-same-table" ];
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " not applicable") false (applicable name))
    [ "disjunction"; "linear-nesting"; "non-neighboring" ]

(* The COUNT bug: o.x >= count(...) over an empty range must compare
   against 0, not against a spuriously counted NULL-padded row. *)
let test_count_bug () =
  let catalog = Query_zoo.mk_catalog ([ [ Value.Int 7; Value.Int 0 ] ], [], []) in
  let query =
    Query_zoo.q
      (N.agg_cmp
         (Expr.attr ~rel:"o" "x")
         Expr.Ge Aggregate.Count_star
         ~where:(N.atom (Expr.eq (Expr.attr ~rel:"i" "k") (Expr.attr ~rel:"o" "k")))
         (N.table "I") "i")
  in
  (* x = 0 >= count(empty) = 0: the row qualifies. *)
  let expected = Naive_eval.eval catalog query in
  Alcotest.(check int) "naive keeps the row" 1 (Relation.cardinality expected);
  let via_semi =
    Subql.Eval.eval catalog (Subql_unnest.Unnest.via_semijoins catalog query)
  in
  Alcotest.(check int) "semijoin path keeps the row" 1 (Relation.cardinality via_semi);
  let via_joins = Subql.Eval.eval catalog (Subql_unnest.Unnest.via_joins catalog query) in
  Alcotest.(check int) "join path keeps the row" 1 (Relation.cardinality via_joins)

let () =
  Alcotest.run "unnest"
    [
      ("zoo-agreement", property_tests);
      ( "pinned",
        [
          Alcotest.test_case "classical applicability" `Quick test_semijoin_applicability;
          Alcotest.test_case "count bug" `Quick test_count_bug;
        ] );
    ]
