(* Query fuzzer: random nested queries over random databases, checked
   across every engine.  This goes beyond the fixed zoo: subquery kinds,
   nesting depth, predicate structure, correlation targets (including
   non-neighboring references) and comparison operators are all drawn at
   random. *)

open Subql_relational
open Subql_nested
module N = Nested_ast
module G = QCheck2.Gen

let ( let* ) = G.bind

let attr = Expr.attr

(* Tables available to the fuzzer and their integer columns. *)
let inner_tables = [ ("I", [ "k"; "y" ]); ("J", [ "k"; "y" ]) ]

type scope_entry = { alias : string; cols : string list }

let gen_cmp = G.oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

(* A scalar expression over the scope: mostly local references, sometimes
   an enclosing alias (possibly non-neighboring), sometimes a constant. *)
let gen_scalar (scope : scope_entry list) : Expr.t G.t =
  let ref_of entry = G.map (fun col -> attr ~rel:entry.alias col) (G.oneofl entry.cols) in
  let rev = List.rev scope in
  let local = List.hd rev in
  let outers = List.tl rev in
  G.frequency
    ((6, ref_of local)
    :: (2, G.map (fun i -> Expr.int i) (G.int_range (-3) 6))
    :: List.map (fun entry -> (2, ref_of entry)) outers)

let gen_atom scope =
  let* op = gen_cmp in
  let* a = gen_scalar scope in
  let* b = gen_scalar scope in
  G.return (N.atom (Expr.cmp op a b))

(* [gen_pred ~depth ~path scope] builds a predicate whose subqueries may
   nest down to [depth]; [path] keeps generated aliases unique. *)
let rec gen_pred ~depth ~path (scope : scope_entry list) : N.pred G.t =
  let atom = gen_atom scope in
  if depth = 0 then atom
  else
    G.frequency
      [
        (3, atom);
        (4, gen_sub ~depth ~path scope);
        ( 2,
          let* a = gen_pred ~depth:(depth - 1) ~path:(path ^ "a") scope in
          let* b = gen_pred ~depth:(depth - 1) ~path:(path ^ "b") scope in
          let* which = G.bool in
          G.return (if which then N.pand a b else N.por a b) );
        ( 1,
          let* p = gen_pred ~depth:(depth - 1) ~path:(path ^ "n") scope in
          G.return (N.pnot p) );
      ]

and gen_sub ~depth ~path scope : N.pred G.t =
  let* table, cols = G.oneofl inner_tables in
  let alias = Printf.sprintf "s%s" path in
  let child_scope = scope @ [ { alias; cols } ] in
  let* where =
    if depth <= 1 then gen_atom child_scope
    else gen_pred ~depth:(depth - 1) ~path:(path ^ "w") child_scope
  in
  (* Bias towards a correlated conjunct so subqueries are rarely
     vacuous. *)
  let* correlate = G.frequencyl [ (4, true); (1, false) ] in
  let* where =
    if not correlate then G.return where
    else
      let* outer_entry = G.oneofl scope in
      let* outer_col = G.oneofl outer_entry.cols in
      let* local_col = G.oneofl cols in
      G.return
        (N.pand
           (N.atom
              (Expr.eq (attr ~rel:alias local_col) (attr ~rel:outer_entry.alias outer_col)))
           where)
  in
  let* lhs = gen_scalar scope in
  let* col = G.oneofl cols in
  let source = N.table table in
  let* kind =
    G.frequencyl
      [
        (3, `Exists);
        (2, `Not_exists);
        (2, `Some_);
        (2, `All);
        (1, `In);
        (1, `Not_in);
        (1, `Scalar);
        (2, `Agg);
      ]
  in
  match kind with
  | `Exists -> G.return (N.exists ~where source alias)
  | `Not_exists -> G.return (N.not_exists ~where source alias)
  | `Some_ ->
    let* op = gen_cmp in
    G.return (N.some_ lhs op ~where source alias ~col)
  | `All ->
    let* op = gen_cmp in
    G.return (N.all_ lhs op ~where source alias ~col)
  | `In -> G.return (N.in_ lhs ~where source alias ~col)
  | `Not_in -> G.return (N.not_in lhs ~where source alias ~col)
  | `Scalar ->
    let* op = gen_cmp in
    G.return (N.scalar_cmp lhs op ~where source alias ~col)
  | `Agg ->
    let* op = gen_cmp in
    let* func =
      G.oneofl
        [
          Aggregate.Count_star;
          Aggregate.Count (attr ~rel:alias col);
          Aggregate.Sum (attr ~rel:alias col);
          Aggregate.Min (attr ~rel:alias col);
          Aggregate.Max (attr ~rel:alias col);
          Aggregate.Avg (attr ~rel:alias col);
        ]
    in
    G.return (N.agg_cmp lhs op func ~where source alias)

let gen_query : N.query G.t =
  let* depth = G.int_range 1 3 in
  let* multi_from = G.frequencyl [ (3, false); (1, true) ] in
  let base, alias, scope =
    if multi_from then
      ( N.Bproduct (N.Balias ("o1", N.table "O"), N.Balias ("o2", N.table "I")),
        "",
        [ { alias = "o1"; cols = [ "k"; "x" ] }; { alias = "o2"; cols = [ "k"; "y" ] } ] )
    else (N.table "O", "o", [ { alias = "o"; cols = [ "k"; "x" ] } ])
  in
  let* where = gen_pred ~depth ~path:"0" scope in
  G.return (N.query ~base ~alias where)

let gen_case = G.pair gen_query Query_zoo.db_gen

(* The agreement property across every engine.  The naive evaluator is
   the executable specification. *)
let engines_agree (query, db) =
  let catalog = Query_zoo.mk_catalog db in
  let reference = Naive_eval.eval ~mode:Naive_eval.Plain catalog query in
  let check name result =
    if Relation.equal_as_multiset reference result then true
    else begin
      Format.eprintf "@.fuzz disagreement (%s) on:@.%a@." name N.pp_query query;
      false
    end
  in
  check "naive-smart" (Naive_eval.eval ~mode:Naive_eval.Smart catalog query)
  && check "gmdj" (Subql.Eval.eval catalog (Subql.Transform.to_algebra query))
  && check "gmdj-scan"
       (Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
          (Subql.Transform.to_algebra query))
  && check "gmdj-opt"
       (Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra query)))
  && check "unnest-joins"
       (Subql.Eval.eval catalog (Subql_unnest.Unnest.via_joins catalog query))
  && (match Subql_unnest.Unnest.via_semijoins catalog query with
     | plan -> check "unnest-semijoins" (Subql.Eval.eval catalog plan)
     | exception Subql_unnest.Unnest.Not_applicable _ -> true)
  && check "planner" (Subql.Planner.run catalog query)

(* Render-parse round trip: the SQL renderer must produce text the
   parser accepts, with identical semantics. *)
let roundtrip (query, db) =
  match Subql_sql.Render.query_to_sql query with
  | exception Subql_sql.Render.Unrepresentable _ -> true
  | sql -> (
    match Subql_sql.Parser.parse sql with
    | exception Subql_sql.Parser.Parse_error (msg, off) ->
      Format.eprintf "@.roundtrip parse error at %d: %s@.SQL: %s@." off msg sql;
      false
    | stmt ->
      let catalog = Query_zoo.mk_catalog db in
      let a = Naive_eval.eval catalog query in
      let b = Naive_eval.eval catalog stmt.Subql_sql.Parser.query in
      if Relation.equal_as_multiset a b then true
      else begin
        Format.eprintf "@.roundtrip semantic drift on:@.%s@." sql;
        false
      end)

let () =
  Alcotest.run "fuzz"
    [
      ( "random-queries",
        [
          Helpers.qtest ~count:400 "all engines agree" gen_case engines_agree;
          Helpers.qtest ~count:400 "sql render/parse round trip" gen_case roundtrip;
        ] );
    ]
