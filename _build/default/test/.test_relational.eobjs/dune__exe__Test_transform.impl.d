test/test_transform.ml: Aggregate Alcotest Catalog Expr Format Helpers List Naive_eval Nested_ast Query_zoo Relation Schema Subql Subql_gmdj Subql_nested Subql_relational Value
