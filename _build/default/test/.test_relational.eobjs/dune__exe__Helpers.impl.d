test/helpers.ml: Alcotest Array List QCheck2 QCheck_alcotest Relation Schema Subql_relational Value
