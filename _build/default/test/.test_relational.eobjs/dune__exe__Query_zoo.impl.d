test/query_zoo.ml: Aggregate Array Catalog Expr Helpers List Nested_ast QCheck2 Relation Schema Subql_nested Subql_relational Value
