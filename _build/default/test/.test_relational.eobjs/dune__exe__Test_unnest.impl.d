test/test_unnest.ml: Aggregate Alcotest Expr Format Helpers List Naive_eval Nested_ast Query_zoo Relation Subql Subql_nested Subql_relational Subql_unnest Value
