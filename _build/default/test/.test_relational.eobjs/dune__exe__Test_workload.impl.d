test/test_workload.ml: Alcotest Array Catalog List Netflow Ops Printf Relation Rng Schema Subql_relational Subql_workload Tpc Value
