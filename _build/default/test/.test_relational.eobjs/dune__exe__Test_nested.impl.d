test/test_nested.ml: Aggregate Alcotest Catalog Expr Helpers List Naive_eval Nested_ast Normalize Printf Query_zoo Relation Scope Subql_nested Subql_relational Value
