test/test_gmdj.mli:
