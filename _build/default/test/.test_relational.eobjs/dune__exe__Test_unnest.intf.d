test/test_unnest.mli:
