test/test_fuzz.ml: Aggregate Alcotest Expr Format Helpers List Naive_eval Nested_ast Printf QCheck2 Query_zoo Relation Subql Subql_nested Subql_relational Subql_sql Subql_unnest
