test/test_laws.ml: Aggregate Alcotest Array Expr Gmdj Helpers List Ops QCheck2 Relation Schema Subql_gmdj Subql_relational Value
