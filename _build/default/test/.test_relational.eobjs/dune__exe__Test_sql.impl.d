test/test_sql.ml: Alcotest Array Expr Helpers List Naive_eval Nested_ast Ops Query_zoo Relation String Subql Subql_nested Subql_relational Subql_sql Value
