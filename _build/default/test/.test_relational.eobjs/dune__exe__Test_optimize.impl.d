test/test_optimize.ml: Aggregate Alcotest Expr Gmdj Helpers List Nested_ast Query_zoo Relation String Subql Subql_gmdj Subql_nested Subql_relational
