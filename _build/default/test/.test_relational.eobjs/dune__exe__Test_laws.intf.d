test/test_laws.mli:
