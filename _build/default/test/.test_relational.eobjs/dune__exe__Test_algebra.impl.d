test/test_algebra.ml: Aggregate Alcotest Catalog Expr Format Gmdj List Query_zoo Relation Schema Str String Subql Subql_gmdj Subql_relational Value
