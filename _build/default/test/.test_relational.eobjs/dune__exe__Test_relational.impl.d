test/test_relational.ml: Aggregate Alcotest Array Bool3 Expr Filename Helpers Index List Ops QCheck2 Relation Schema Subql_relational Sys Table_io Value Vec
