test/test_gmdj.ml: Aggregate Alcotest Array Distributed Expr Gmdj Helpers List Olap Ops QCheck2 Relation Schema String Subql_gmdj Subql_relational Value
