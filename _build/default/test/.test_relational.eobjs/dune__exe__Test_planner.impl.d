test/test_planner.ml: Alcotest Expr Float Format Helpers List Naive_eval Nested_ast Printf Query_zoo Relation Str String Subql Subql_nested Subql_relational Value
