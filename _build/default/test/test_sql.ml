(* SQL front-end: parsing, lowering, and end-to-end agreement with
   hand-built nested-algebra queries. *)

open Subql_relational
open Subql_nested
module N = Nested_ast
module P = Subql_sql.Parser

let parse_ok sql =
  match P.parse sql with
  | stmt -> stmt
  | exception P.Parse_error (msg, off) ->
    Alcotest.failf "unexpected parse error at %d: %s" off msg

let parse_fails sql =
  match P.parse sql with
  | _ -> Alcotest.failf "expected a parse error for %S" sql
  | exception P.Parse_error _ -> ()

(* SQL text and the equivalent hand-built query must evaluate to the
   same multiset on random databases. *)
let sql_equiv_cases : (string * string * N.query) list =
  let attr = Expr.attr in
  [
    ( "exists",
      "SELECT * FROM O o WHERE EXISTS (SELECT * FROM I i WHERE i.k = o.k AND i.y > 2)",
      List.assoc "exists" Query_zoo.queries );
    ( "not-exists",
      "select * from O o where not exists (select 1 from I i where i.k = o.k)",
      Query_zoo.q (N.not_exists ~where:(N.atom Query_zoo.corr) (N.table "I") "i") );
    ( "some",
      "SELECT * FROM O o WHERE o.x < SOME (SELECT y FROM I i WHERE i.k = o.k)",
      List.assoc "some" Query_zoo.queries );
    ( "any",
      "SELECT * FROM O o WHERE o.x < ANY (SELECT i.y FROM I i WHERE i.k = o.k)",
      List.assoc "some" Query_zoo.queries );
    ( "all",
      "SELECT * FROM O o WHERE o.x <> ALL (SELECT y FROM I i WHERE i.y > 2)",
      List.assoc "all-ne" Query_zoo.queries );
    ( "scalar",
      "SELECT * FROM O o WHERE o.x = (SELECT y FROM I i WHERE i.k = o.k)",
      List.assoc "scalar" Query_zoo.queries );
    ( "agg",
      "SELECT * FROM O o WHERE o.x < (SELECT SUM(i.y) FROM I i WHERE i.k = o.k)",
      List.assoc "agg-sum" Query_zoo.queries );
    ( "in",
      "SELECT * FROM O o WHERE o.x IN (SELECT y FROM I i WHERE i.y > 2)",
      List.assoc "in" Query_zoo.queries );
    ( "not-in",
      "SELECT * FROM O o WHERE o.x NOT IN (SELECT y FROM I i)",
      List.assoc "not-in" Query_zoo.queries );
    ( "negation-disjunction",
      "SELECT * FROM O o WHERE NOT EXISTS (SELECT * FROM I i WHERE i.k = o.k AND i.y > 2) \
       OR o.x > 3",
      Query_zoo.q
        (N.por
           (N.pnot
              (N.exists
                 ~where:(N.atom (Expr.and_ Query_zoo.corr Query_zoo.local_i))
                 (N.table "I") "i"))
           (N.atom (Expr.gt (attr ~rel:"o" "x") (Expr.int 3)))) );
    ( "nested",
      "SELECT * FROM O o WHERE EXISTS (SELECT * FROM I i WHERE i.k = o.k AND EXISTS \
       (SELECT * FROM J j WHERE j.k = i.k AND j.y < i.y))",
      List.assoc "linear-nesting" Query_zoo.queries );
    ( "parenthesized-arith",
      "SELECT * FROM O o WHERE (o.x + 1) * 2 > 4 AND (o.k > 0 OR o.k < 0)",
      Query_zoo.q
        (N.pand
           (N.atom
              (Expr.gt
                 (Expr.Arith (Expr.Mul, Expr.Arith (Expr.Add, attr ~rel:"o" "x", Expr.int 1), Expr.int 2))
                 (Expr.int 4)))
           (N.por
              (N.atom (Expr.gt (attr ~rel:"o" "k") (Expr.int 0)))
              (N.atom (Expr.lt (attr ~rel:"o" "k") (Expr.int 0))))) );
    ( "is-null",
      "SELECT * FROM O o WHERE o.k IS NULL OR o.x IS NOT NULL",
      Query_zoo.q
        (N.por
           (N.atom (Expr.Is_null (attr ~rel:"o" "k")))
           (N.atom (Expr.Is_not_null (attr ~rel:"o" "x")))) );
    ( "select-cols",
      "SELECT o.k, x FROM O o WHERE o.x > 0",
      N.query
        ~select:(N.Select_cols [ (Some "o", "k"); (None, "x") ])
        ~base:(N.table "O") ~alias:"o"
        (N.atom (Expr.gt (attr ~rel:"o" "x") (Expr.int 0))) );
    ( "multi-from",
      "SELECT * FROM O a, I b WHERE a.k = b.k AND EXISTS (SELECT * FROM J j WHERE j.k = \
       a.k AND j.y > b.y)",
      List.assoc "multi-from" Query_zoo.queries );
    ( "select-exprs",
      "SELECT o.k + 1 AS k1 FROM O o",
      N.query
        ~select:(N.Select_exprs [ (Expr.Arith (Expr.Add, attr ~rel:"o" "k", Expr.int 1), "k1") ])
        ~base:(N.table "O") ~alias:"o" N.Ptrue );
  ]

let equiv_prop sql expected db =
  let catalog = Query_zoo.mk_catalog db in
  let stmt = parse_ok sql in
  let from_sql = Naive_eval.eval catalog stmt.P.query in
  let from_sql = if stmt.P.distinct then Ops.distinct from_sql else from_sql in
  let reference = Naive_eval.eval catalog expected in
  Relation.equal_as_multiset reference from_sql

let property_tests =
  List.map
    (fun (name, sql, expected) ->
      Helpers.qtest ~count:60 ("sql ≡ ast: " ^ name) Query_zoo.db_gen (equiv_prop sql expected))
    sql_equiv_cases

let test_distinct () =
  let catalog =
    Query_zoo.mk_catalog
      ([ [ Value.Int 1; Value.Int 1 ]; [ Value.Int 1; Value.Int 1 ]; [ Value.Int 2; Value.Int 1 ] ], [], [])
  in
  let stmt = parse_ok "SELECT DISTINCT x FROM O o" in
  Alcotest.(check bool) "distinct flag" true stmt.P.distinct;
  let result = Ops.distinct (Naive_eval.eval catalog stmt.P.query) in
  Alcotest.(check int) "one distinct value" 1 (Relation.cardinality result)

let test_default_alias () =
  let stmt = parse_ok "SELECT * FROM O WHERE EXISTS (SELECT * FROM I WHERE I.k = O.k)" in
  Alcotest.(check string) "alias defaults to table" "O" stmt.P.query.N.q_alias

let test_string_literals () =
  let stmt = parse_ok "SELECT * FROM O o WHERE o.k = 'it''s'" in
  match stmt.P.query.N.q_where with
  | N.Atom (Expr.Cmp (Expr.Eq, _, Expr.Const (Value.Str s))) ->
    Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "unexpected predicate shape"

let test_parse_errors () =
  List.iter parse_fails
    [
      "";
      "SELECT";
      "SELECT * FROM";
      "SELECT * FROM O o WHERE";
      "SELECT * FROM O o WHERE o.x >";
      "SELECT * FROM O o WHERE EXISTS (SELECT sum(y) FROM I i)";
      "SELECT * FROM O o WHERE o.x IN (SELECT * FROM I i)";
      "SELECT * FROM O o WHERE o.x = (SELECT * FROM I i)";
      "SELECT o.x + 1 FROM O o";
      "SELECT * FROM O o WHERE o.x = ALL (SELECT j.y FROM I i)";
      "SELECT * FROM O o extra";
      "SELECT * FROM O o WHERE o.x = 'unterminated";
      "SELECT * FROM O o WHERE o.x BETWEEN 1";
      "SELECT * FROM O o LIMIT -1";
      "SELECT * FROM O o ORDER BY";
      "SELECT * FROM O o GROUP BY o.k";
      "SELECT o.k FROM O o GROUP BY o.k HAVING EXISTS (SELECT * FROM I i)";
      "SELECT o.k FROM O o GROUP BY";
    ]

let test_between () =
  let catalog =
    Query_zoo.mk_catalog
      (List.init 10 (fun i -> [ Value.Int i; Value.Int i ]) |> fun o -> (o, [], []))
  in
  let stmt = parse_ok "SELECT * FROM O o WHERE o.k BETWEEN 3 AND 6" in
  Alcotest.(check int) "between" 4
    (Relation.cardinality (Naive_eval.eval catalog stmt.P.query));
  let stmt = parse_ok "SELECT * FROM O o WHERE o.k NOT BETWEEN 3 AND 6" in
  Alcotest.(check int) "not between" 6
    (Relation.cardinality (Naive_eval.eval catalog stmt.P.query))

let test_order_by_limit () =
  let catalog =
    Query_zoo.mk_catalog
      ([ [ Value.Int 3; Value.Int 30 ]; [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ] ], [], [])
  in
  let stmt = parse_ok "SELECT * FROM O o ORDER BY o.k DESC LIMIT 2" in
  Alcotest.(check (list (pair (option string) string))) "order cols" [ (Some "o", "k") ]
    (List.map fst stmt.P.order_by);
  Alcotest.(check (option int)) "limit" (Some 2) stmt.P.limit;
  let result = P.apply_post stmt (Naive_eval.eval catalog stmt.P.query) in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality result);
  Alcotest.(check bool) "descending" true
    (Value.equal (Relation.row result 0).(0) (Value.Int 3));
  let stmt = parse_ok "SELECT * FROM O o ORDER BY k ASC, x DESC" in
  Alcotest.(check int) "two order keys" 2 (List.length stmt.P.order_by)

let run_stmt catalog stmt =
  Naive_eval.eval catalog stmt.P.query |> P.apply_grouping stmt |> P.apply_post stmt

let test_group_by () =
  let catalog =
    Query_zoo.mk_catalog
      ( Value.
          [
            [ Int 1; Int 10 ];
            [ Int 1; Int 20 ];
            [ Int 2; Int 5 ];
            [ Int 2; Null ];
            [ Int 3; Int 1 ];
          ],
        [],
        [] )
  in
  let stmt =
    parse_ok
      "SELECT o.k, SUM(o.x) AS total, COUNT(*) AS n FROM O o GROUP BY o.k ORDER BY o.k"
  in
  let result = run_stmt catalog stmt in
  Alcotest.(check int) "three groups" 3 (Relation.cardinality result);
  let row0 = Relation.row result 0 in
  Alcotest.(check bool) "k=1 total 30" true (Value.equal row0.(1) (Value.Int 30));
  Alcotest.(check bool) "k=1 count 2" true (Value.equal row0.(2) (Value.Int 2));
  let row1 = Relation.row result 1 in
  Alcotest.(check bool) "k=2 total 5 (null ignored)" true (Value.equal row1.(1) (Value.Int 5))

let test_group_by_having () =
  let catalog =
    Query_zoo.mk_catalog
      ( Value.
          [ [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 5 ]; [ Int 3; Int 100 ] ],
        [],
        [] )
  in
  let stmt =
    parse_ok "SELECT o.k FROM O o GROUP BY o.k HAVING SUM(o.x) > 20 AND COUNT(*) >= 1"
  in
  let result = run_stmt catalog stmt in
  (* groups: k=1 sum 30 ✓, k=2 sum 5 ✗, k=3 sum 100 ✓ *)
  Alcotest.(check int) "two groups survive" 2 (Relation.cardinality result)

let test_global_aggregate () =
  let catalog =
    Query_zoo.mk_catalog (Value.[ [ Int 1; Int 10 ]; [ Int 2; Int 20 ] ], [], [])
  in
  let stmt = parse_ok "SELECT COUNT(*) AS n, SUM(o.x) AS s, AVG(o.x) FROM O o" in
  let result = run_stmt catalog stmt in
  Alcotest.(check int) "one row" 1 (Relation.cardinality result);
  let row = Relation.row result 0 in
  Alcotest.(check bool) "count" true (Value.equal row.(0) (Value.Int 2));
  Alcotest.(check bool) "sum" true (Value.equal row.(1) (Value.Int 30));
  Alcotest.(check bool) "avg" true (Value.equal row.(2) (Value.Float 15.0));
  (* Empty input still produces one row with COUNT 0 and NULL sums. *)
  let empty = Query_zoo.mk_catalog ([], [], []) in
  let result = run_stmt empty stmt in
  Alcotest.(check int) "one row on empty" 1 (Relation.cardinality result);
  Alcotest.(check bool) "count 0" true (Value.equal (Relation.row result 0).(0) (Value.Int 0));
  Alcotest.(check bool) "sum null" true (Value.is_null (Relation.row result 0).(1))

let test_group_by_with_subquery_where () =
  (* The WHERE subquery filters rows before grouping — the full pipeline:
     subquery engine, then grouping. *)
  let catalog =
    Query_zoo.mk_catalog
      ( Value.[ [ Int 1; Int 10 ]; [ Int 1; Int 20 ]; [ Int 2; Int 5 ] ],
        Value.[ [ Int 1; Int 0 ] ],
        [] )
  in
  let stmt =
    parse_ok
      "SELECT o.k, COUNT(*) AS n FROM O o WHERE EXISTS (SELECT * FROM I i WHERE i.k = o.k) \
       GROUP BY o.k"
  in
  let result = run_stmt catalog stmt in
  Alcotest.(check int) "only the matching key groups" 1 (Relation.cardinality result);
  Alcotest.(check bool) "count 2" true
    (Value.equal (Relation.row result 0).(1) (Value.Int 2));
  (* And the grouping is engine-independent. *)
  let via_gmdj =
    Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra stmt.P.query))
    |> P.apply_grouping stmt |> P.apply_post stmt
  in
  Alcotest.(check bool) "gmdj path agrees" true (Relation.equal_as_multiset result via_gmdj)

let test_having_reuses_select_aggregate () =
  let stmt = parse_ok "SELECT o.k, SUM(o.x) AS s FROM O o GROUP BY o.k HAVING SUM(o.x) > 3" in
  match stmt.P.grouped with
  | Some g -> Alcotest.(check int) "one aggregate computed" 1 (List.length g.P.aggs)
  | None -> Alcotest.fail "expected a grouped statement"

let test_error_rendering () =
  let rendered = P.parse_exn_to_string "SELECT * FROM O o WHERE o.x >" in
  Alcotest.(check bool) "mentions parse error" true
    (String.length rendered > 0 && String.sub rendered 0 11 = "parse error")

let () =
  Alcotest.run "sql"
    [
      ("equivalence", property_tests);
      ( "parsing",
        [
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "default alias" `Quick test_default_alias;
          Alcotest.test_case "string literals" `Quick test_string_literals;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "between" `Quick test_between;
          Alcotest.test_case "order by and limit" `Quick test_order_by_limit;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "having" `Quick test_group_by_having;
          Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
          Alcotest.test_case "group by + where subquery" `Quick
            test_group_by_with_subquery_where;
          Alcotest.test_case "having reuses select aggregate" `Quick
            test_having_reuses_select_aggregate;
          Alcotest.test_case "error rendering" `Quick test_error_rendering;
        ] );
    ]
