(* Algebraic laws of the GMDJ (Section 3.2/4 of the paper), validated as
   executable properties over random relations:

   - Thm 3.3:  MD(B, R, l, θ) and MD(B, B ⋈_θ' R, l, θ∧…) — we check the
     practical form used by the translation: embedding a distinct copy of
     B's columns into the detail and matching them null-safely in θ
     changes nothing.
   - Thm 3.4:  T ⋈_C MD(B, R, l, θ)  =  MD(T ⋈_C B, R, l, θ).
   - MD commutes with selections on its base (the optimizer's push-up).
   - Prop 4.1: chained GMDJs over the same detail = one coalesced GMDJ.
   - MD commutes with independent MDs (GMDJ reordering). *)

open Subql_relational
open Subql_gmdj

let attr = Expr.attr

let mk_rel name cols rows =
  Relation.of_list
    (Schema.of_list (List.map (fun c -> Schema.attr ~rel:name c Value.Tint) cols))
    (List.map Array.of_list rows)

let gen3 =
  QCheck2.Gen.triple
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 10)
       (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 14)
       (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8)
       (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))

let theta = Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k")

let blocks =
  [
    Gmdj.block
      [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
      (Expr.and_ theta (Expr.gt (attr ~rel:"R" "y") (attr ~rel:"B" "x")));
  ]

(* Thm 3.4: joining T onto the base before or after the GMDJ is the
   same, as long as the join condition ranges over T and B only. *)
let thm_3_4 (trows, rrows, brows) =
  let t = mk_rel "T" [ "k"; "z" ] trows in
  let b = mk_rel "B" [ "k"; "x" ] brows in
  let r = mk_rel "R" [ "k"; "y" ] rrows in
  let join_cond = Expr.eq (attr ~rel:"T" "k") (attr ~rel:"B" "k") in
  let after = Ops.join join_cond t (Gmdj.eval ~base:b ~detail:r blocks) in
  let before = Gmdj.eval ~base:(Ops.join join_cond t b) ~detail:r blocks in
  Relation.equal_as_multiset after before

(* Selection on the base commutes with the GMDJ. *)
let select_commutes (_, rrows, brows) =
  let b = mk_rel "B" [ "k"; "x" ] brows in
  let r = mk_rel "R" [ "k"; "y" ] rrows in
  let pred = Expr.gt (attr ~rel:"B" "x") (Expr.int 0) in
  let select_then_md = Gmdj.eval ~base:(Ops.select pred b) ~detail:r blocks in
  let md_then_select = Ops.select pred (Gmdj.eval ~base:b ~detail:r blocks) in
  Relation.equal_as_multiset select_then_md md_then_select

(* Prop 4.1: chaining two GMDJs over the same detail equals one GMDJ
   with both block lists. *)
let coalescing_law (_, rrows, brows) =
  let b = mk_rel "B" [ "k"; "x" ] brows in
  let r = mk_rel "R" [ "k"; "y" ] rrows in
  let b1 = Gmdj.block [ Aggregate.count_star "c1" ] theta in
  let b2 =
    Gmdj.block
      [ Aggregate.max_ (attr ~rel:"R" "y") "m2" ]
      (Expr.ne (attr ~rel:"B" "k") (attr ~rel:"R" "k"))
  in
  let chained = Gmdj.eval ~base:(Gmdj.eval ~base:b ~detail:r [ b1 ]) ~detail:r [ b2 ] in
  let merged = Gmdj.eval ~base:b ~detail:r [ b1; b2 ] in
  Relation.equal_as_multiset chained merged

(* Independent GMDJs over different details commute (modulo column
   order, which we normalize by sorting the projection). *)
let md_commute (trows, rrows, brows) =
  let b = mk_rel "B" [ "k"; "x" ] brows in
  let r = mk_rel "R" [ "k"; "y" ] rrows in
  let t = mk_rel "T" [ "k"; "z" ] trows in
  let blk_r = Gmdj.block [ Aggregate.count_star "cr" ] theta in
  let blk_t =
    Gmdj.block [ Aggregate.count_star "ct" ] (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"T" "k"))
  in
  let rt = Gmdj.eval ~base:(Gmdj.eval ~base:b ~detail:r [ blk_r ]) ~detail:t [ blk_t ] in
  let tr = Gmdj.eval ~base:(Gmdj.eval ~base:b ~detail:t [ blk_t ]) ~detail:r [ blk_r ] in
  let norm rel =
    Ops.project_cols [ (Some "B", "k"); (Some "B", "x"); (None, "cr"); (None, "ct") ] rel
  in
  Relation.equal_as_multiset (norm rt) (norm tr)

(* Thm 3.3 in the form the translation uses: embedding a distinct copy
   of the referenced base columns into the detail and matching them
   null-safely leaves the counts unchanged. *)
let push_down_embedding (_, rrows, brows) =
  let b = mk_rel "B" [ "k"; "x" ] brows in
  let r = mk_rel "R" [ "k"; "y" ] rrows in
  let plain = Gmdj.eval ~base:b ~detail:r blocks in
  let pushed_b = Relation.rename "P" (Ops.distinct b) in
  let widened = Ops.product pushed_b r in
  let match_b =
    Expr.and_
      (Expr.Null_safe_eq (attr ~rel:"B" "k", attr ~rel:"P" "k"))
      (Expr.Null_safe_eq (attr ~rel:"B" "x", attr ~rel:"P" "x"))
  in
  let blocks' =
    List.map (fun blk -> { blk with Gmdj.theta = Expr.and_ blk.Gmdj.theta match_b }) blocks
  in
  let embedded = Gmdj.eval ~base:b ~detail:widened blocks' in
  Relation.equal_as_multiset plain embedded

let () =
  Alcotest.run "laws"
    [
      ( "gmdj-algebra",
        [
          Helpers.qtest ~count:150 "Thm 3.4: join pushes through the base" gen3 thm_3_4;
          Helpers.qtest ~count:150 "selection commutes with MD" gen3 select_commutes;
          Helpers.qtest ~count:150 "Prop 4.1: coalescing" gen3 coalescing_law;
          Helpers.qtest ~count:150 "independent MDs commute" gen3 md_commute;
          Helpers.qtest ~count:150 "Thm 3.3: push-down embedding" gen3 push_down_embedding;
        ] );
    ]
