(* GMDJ operator tests: Definition 2.1, Figure 1, strategies, completion. *)

open Subql_relational
open Subql_gmdj

let attr = Expr.attr

(* The two blocks of Example 2.1. *)
let example_blocks =
  let in_hour =
    Expr.and_
      (Expr.ge (attr ~rel:"F" "StartTime") (attr ~rel:"H" "StartInterval"))
      (Expr.lt (attr ~rel:"F" "StartTime") (attr ~rel:"H" "EndInterval"))
  in
  [
    Gmdj.block
      [ Aggregate.sum (attr ~rel:"F" "NumBytes") "sum1" ]
      (Expr.and_ in_hour (Expr.eq (attr ~rel:"F" "Protocol") (Expr.str "HTTP")));
    Gmdj.block [ Aggregate.sum (attr ~rel:"F" "NumBytes") "sum2" ] in_hour;
  ]

let base = Relation.rename "H" Helpers.hours

let detail = Relation.rename "F" Helpers.flow

let expected_fig1 =
  (* HourDsc, StartInterval, EndInterval, sum1, sum2 — the unreduced
     sums of Figure 1: 12/12, 36/84, 48/96. *)
  Helpers.rel
    (Schema.concat
       (Schema.rename_rel "H" Helpers.hours_schema)
       (Helpers.schema [ ("", "sum1", Value.Tint); ("", "sum2", Value.Tint) ]))
    Value.
      [
        [ Int 1; Int 0; Int 60; Int 12; Int 12 ];
        [ Int 2; Int 61; Int 120; Int 36; Int 84 ];
        [ Int 3; Int 121; Int 180; Int 48; Int 96 ];
      ]

let test_fig1 strategy () =
  let result = Gmdj.eval ~strategy ~base ~detail example_blocks in
  Helpers.check_multiset_equal "figure 1" expected_fig1 result

let test_output_schema () =
  let s = Gmdj.output_schema ~base:(Relation.schema base) ~detail:(Relation.schema detail) example_blocks in
  Alcotest.(check int) "arity" 5 (Schema.arity s);
  Alcotest.(check string) "sum1" "sum1" (Schema.attr_at s 3).Schema.name;
  Alcotest.(check string) "sum2" "sum2" (Schema.attr_at s 4).Schema.name

let test_duplicate_agg_names_renamed () =
  let blocks =
    [
      Gmdj.block [ Aggregate.count_star "cnt" ] (Expr.bool true);
      Gmdj.block [ Aggregate.count_star "cnt" ] (Expr.bool true);
    ]
  in
  let s = Gmdj.output_schema ~base:(Relation.schema base) ~detail:(Relation.schema detail) blocks in
  let names = List.map (fun a -> a.Schema.name) (Schema.to_list s) in
  Alcotest.(check bool) "names distinct"
    true
    (List.length (List.sort_uniq String.compare names) = List.length names)

let test_empty_detail () =
  let empty = Relation.empty (Relation.schema detail) in
  let blocks =
    [
      Gmdj.block [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"F" "NumBytes") "s" ]
        (Expr.bool true);
    ]
  in
  let result = Gmdj.eval ~base ~detail:empty blocks in
  Alcotest.(check int) "rows preserved" 3 (Relation.cardinality result);
  Relation.iter
    (fun row ->
      Alcotest.(check bool) "count is 0" true (Value.equal row.(3) (Value.Int 0));
      Alcotest.(check bool) "sum is NULL" true (Value.is_null row.(4)))
    result

let test_empty_base () =
  let empty = Relation.empty (Relation.schema base) in
  let result = Gmdj.eval ~base:empty ~detail example_blocks in
  Alcotest.(check int) "no rows" 0 (Relation.cardinality result)

(* Random-equivalence: Scan and Hash agree with the Reference evaluator
   on random data over a θ mixing an equi-condition and a residual. *)

let equivalence_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let theta_equi =
    Expr.and_
      (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"))
      (Expr.le (attr ~rel:"B" "x") (attr ~rel:"R" "y"))
  in
  let theta_non_equi = Expr.ne (attr ~rel:"B" "k") (attr ~rel:"R" "k") in
  let blocks =
    [
      Gmdj.block
        [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
        theta_equi;
      Gmdj.block
        [
          Aggregate.min_ (attr ~rel:"R" "y") "mn";
          Aggregate.max_ (attr ~rel:"R" "y") "mx";
          Aggregate.avg (attr ~rel:"R" "y") "av";
          Aggregate.count (attr ~rel:"R" "y") "cy";
        ]
        theta_non_equi;
    ]
  in
  let reference = Gmdj.eval ~strategy:`Reference ~base ~detail blocks in
  let scan = Gmdj.eval ~strategy:`Scan ~base ~detail blocks in
  let hash = Gmdj.eval ~strategy:`Hash ~base ~detail blocks in
  Relation.equal_as_multiset reference scan && Relation.equal_as_multiset reference hash

let pair_gen =
  QCheck2.Gen.pair
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 12)
       (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))
  @@ QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20)
       (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls)

(* Completion equivalence: σ[cnt1 > 0 ∧ cnt2 = 0](MD(...)) computed via
   eval_completed must equal the straightforward eval-then-filter. *)
let completion_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let theta1 = Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k") in
  let theta2 = Expr.lt (attr ~rel:"B" "x") (attr ~rel:"R" "y") in
  let blocks =
    [
      Gmdj.block [ Aggregate.count_star "cnt1" ] theta1;
      Gmdj.block [ Aggregate.count_star "cnt2" ] theta2;
    ]
  in
  let plain = Gmdj.eval ~base ~detail blocks in
  let filtered =
    Ops.select
      (Expr.and_
         (Expr.gt (attr "cnt1") (Expr.int 0))
         (Expr.eq (attr "cnt2") (Expr.int 0)))
      plain
  in
  let completion =
    { Gmdj.kill_when = [ theta2 ]; require_fired = [ theta1 ]; maintain_aggregates = true }
  in
  let completed = Gmdj.eval_completed ~completion ~base ~detail blocks in
  Relation.equal_as_multiset filtered completed

(* With maintain_aggregates = false only the base columns are trustworthy;
   compare after projecting the aggregates away. *)
let completion_no_aggs_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let theta1 = Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k") in
  let theta2 = Expr.lt (attr ~rel:"B" "x") (attr ~rel:"R" "y") in
  let blocks =
    [
      Gmdj.block [ Aggregate.count_star "cnt1" ] theta1;
      Gmdj.block [ Aggregate.count_star "cnt2" ] theta2;
    ]
  in
  let base_cols = [ (Some "B", "k"); (Some "B", "x") ] in
  let plain = Gmdj.eval ~base ~detail blocks in
  let filtered =
    Ops.project_cols base_cols
      (Ops.select
         (Expr.and_
            (Expr.gt (attr "cnt1") (Expr.int 0))
            (Expr.eq (attr "cnt2") (Expr.int 0)))
         plain)
  in
  let completion =
    { Gmdj.kill_when = [ theta2 ]; require_fired = [ theta1 ]; maintain_aggregates = false }
  in
  let completed =
    Ops.project_cols base_cols (Gmdj.eval_completed ~completion ~base ~detail blocks)
  in
  Relation.equal_as_multiset filtered completed

(* Segmented evaluation must match single-segment evaluation exactly,
   for any segment size, and cost exactly ⌈|B|/size⌉ detail scans. *)
let segmented_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let blocks =
    [
      Gmdj.block
        [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
        (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
    ]
  in
  let whole = Gmdj.eval ~base ~detail blocks in
  List.for_all
    (fun size ->
      Relation.equal_as_multiset whole
        (Gmdj.eval_segmented ~segment_size:size ~base ~detail blocks))
    [ 1; 3; 7; max 1 (Relation.cardinality base); Relation.cardinality base + 5 ]

(* Partitioned evaluation must match single-domain evaluation exactly:
   every aggregate state merges correctly across partitions. *)
let partitioned_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let blocks =
    [
      Gmdj.block
        [
          Aggregate.count_star "cnt";
          Aggregate.sum (attr ~rel:"R" "y") "s";
          Aggregate.min_ (attr ~rel:"R" "y") "mn";
          Aggregate.max_ (attr ~rel:"R" "y") "mx";
          Aggregate.avg (attr ~rel:"R" "y") "av";
          Aggregate.count (attr ~rel:"R" "y") "cy";
        ]
        (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
      Gmdj.block [ Aggregate.count_star "c2" ] (Expr.lt (attr ~rel:"B" "x") (attr ~rel:"R" "y"));
    ]
  in
  let whole = Gmdj.eval ~base ~detail blocks in
  List.for_all
    (fun domains ->
      Relation.equal_as_multiset whole
        (Gmdj.eval_partitioned ~domains ~base ~detail blocks))
    [ 1; 2; 3; 7 ]

let test_partitioned_stats () =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
      (List.init 5 (fun i -> [| Value.Int i |]))
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint ])
      (List.init 100 (fun i -> [| Value.Int (i mod 5) |]))
  in
  let blocks =
    [ Gmdj.block [ Aggregate.count_star "cnt" ] (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k")) ]
  in
  let stats = Gmdj.fresh_stats () in
  ignore (Gmdj.eval_partitioned ~stats ~domains:4 ~base ~detail blocks);
  Alcotest.(check int) "every detail row scanned once" 100 stats.Gmdj.detail_scanned;
  (match Gmdj.eval_partitioned ~domains:0 ~base ~detail blocks with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains 0 must be rejected")

let test_segmented_scan_count () =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
      (List.init 10 (fun i -> [| Value.Int i |]))
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint ])
      (List.init 100 (fun i -> [| Value.Int (i mod 10) |]))
  in
  let blocks =
    [ Gmdj.block [ Aggregate.count_star "cnt" ] (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k")) ]
  in
  let stats = Gmdj.fresh_stats () in
  ignore (Gmdj.eval_segmented ~stats ~segment_size:3 ~base ~detail blocks);
  (* ⌈10/3⌉ = 4 detail scans of 100 rows each. *)
  Alcotest.(check int) "4 scans" 400 stats.Gmdj.detail_scanned;
  (match Gmdj.eval_segmented ~segment_size:0 ~base ~detail blocks with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "segment_size 0 must be rejected")

(* Incremental maintenance: inserting then deleting a delta returns the
   view to the state of recomputation at each step. *)
let maintenance_prop (brows, drows) =
  let split = List.length drows / 2 in
  let d1 = List.filteri (fun i _ -> i < split) drows in
  let d2 = List.filteri (fun i _ -> i >= split) drows in
  let mk_detail rows =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list rows)
  in
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let blocks =
    [
      Gmdj.block
        [
          Aggregate.count_star "cnt";
          Aggregate.sum (attr ~rel:"R" "y") "s";
          Aggregate.avg (attr ~rel:"R" "y") "av";
          Aggregate.count (attr ~rel:"R" "y") "cy";
        ]
        (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
    ]
  in
  let view = Gmdj.Maintain.create ~base ~detail:(mk_detail d1) blocks in
  let ok1 =
    Relation.equal_as_multiset (Gmdj.eval ~base ~detail:(mk_detail d1) blocks)
      (Gmdj.Maintain.result view)
  in
  Gmdj.Maintain.insert_detail view (mk_detail d2);
  let ok2 =
    Relation.equal_as_multiset
      (Gmdj.eval ~base ~detail:(mk_detail (d1 @ d2)) blocks)
      (Gmdj.Maintain.result view)
  in
  Gmdj.Maintain.delete_detail view (mk_detail d2);
  let ok3 =
    Relation.equal_as_multiset (Gmdj.eval ~base ~detail:(mk_detail d1) blocks)
      (Gmdj.Maintain.result view)
  in
  Gmdj.Maintain.delete_detail view (mk_detail d1);
  let ok4 =
    Relation.equal_as_multiset
      (Gmdj.eval ~base ~detail:(mk_detail []) blocks)
      (Gmdj.Maintain.result view)
  in
  ok1 && ok2 && ok3 && ok4

let test_maintain_minmax_rules () =
  let base =
    Relation.of_list (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ]) [ [| Value.Int 1 |] ]
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint ])
      [ [| Value.Int 1 |]; [| Value.Int 2 |] ]
  in
  let theta = Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k") in
  let blocks = [ Gmdj.block [ Aggregate.max_ (attr ~rel:"R" "k") "m" ] theta ] in
  let view = Gmdj.Maintain.create ~base ~detail blocks in
  (* Insertions are fine for MIN/MAX... *)
  Gmdj.Maintain.insert_detail view detail;
  (* ...but deletions must be rejected. *)
  (match Gmdj.Maintain.delete_detail view detail with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "MIN/MAX deletion must be rejected");
  (* And a schema mismatch is caught. *)
  let wrong =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "z" Value.Tint ])
      []
  in
  match Gmdj.Maintain.insert_detail view wrong with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "schema mismatch must be rejected"

let test_early_exit () =
  (* All base tuples get killed by the very first detail rows: the scan
     must stop early. *)
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
      [ [| Value.Int 1 |]; [| Value.Int 2 |] ]
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint ])
      (List.init 1000 (fun i -> [| Value.Int (1 + (i mod 2)) |]))
  in
  let theta = Expr.eq (Expr.attr ~rel:"B" "k") (Expr.attr ~rel:"R" "k") in
  let blocks = [ Gmdj.block [ Aggregate.count_star "cnt" ] theta ] in
  let stats = Gmdj.fresh_stats () in
  let completion =
    { Gmdj.kill_when = [ theta ]; require_fired = []; maintain_aggregates = false }
  in
  let result = Gmdj.eval_completed ~stats ~completion ~base ~detail blocks in
  Alcotest.(check int) "all killed" 0 (Relation.cardinality result);
  Alcotest.(check bool) "early exit" true stats.Gmdj.early_exit;
  Alcotest.(check bool) "scan shortened" true (stats.Gmdj.detail_scanned < 1000)

(* --- Distributed evaluation -------------------------------------------- *)

let dist_blocks =
  [
    Gmdj.block
      [
        Aggregate.count_star "cnt";
        Aggregate.sum (attr ~rel:"R" "y") "s";
        Aggregate.avg (attr ~rel:"R" "y") "av";
        Aggregate.min_ (attr ~rel:"R" "y") "mn";
        Aggregate.max_ (attr ~rel:"R" "y") "mx";
      ]
      (Expr.and_
         (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"))
         (Expr.gt (attr ~rel:"R" "y") (Expr.int 0)));
  ]

let distributed_prop (brows, drows) =
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint; Schema.attr ~rel:"B" "x" Value.Tint ])
      (List.map Array.of_list brows)
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.map Array.of_list drows)
  in
  let expected = Gmdj.eval ~base ~detail dist_blocks in
  List.for_all
    (fun sites ->
      List.for_all
        (fun partition ->
          let cluster = Distributed.Cluster.create ~sites ~partition detail in
          List.for_all
            (fun strategy ->
              let report = Distributed.execute ~strategy cluster ~base dist_blocks in
              Relation.equal_as_multiset expected report.Distributed.result)
            [ Distributed.Ship_all; Distributed.Ship_filtered; Distributed.Partial_aggregates ])
        [ `Round_robin; `Hash_on (Some "R", "k") ])
    [ 1; 3; 5 ]

let test_distributed_traffic () =
  (* Large detail, small base: partial aggregation must ship far less
     than raw rows; the filtered strategy sits in between. *)
  let base =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
      (List.init 10 (fun i -> [| Value.Int i |]))
  in
  let detail =
    Relation.of_list
      (Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ])
      (List.init 5000 (fun i -> [| Value.Int (i mod 10); Value.Int ((i mod 7) - 3) |]))
  in
  let cluster = Distributed.Cluster.create ~sites:4 detail in
  Alcotest.(check int) "partition covers detail" 5000
    (Array.fold_left ( + ) 0 (Distributed.Cluster.site_rows cluster));
  let run strategy = Distributed.execute ~strategy cluster ~base dist_blocks in
  let ship_all = run Distributed.Ship_all in
  let filtered = run Distributed.Ship_filtered in
  let partial = run Distributed.Partial_aggregates in
  Alcotest.(check bool) "filtered ships less" true
    (Distributed.total_bytes filtered < Distributed.total_bytes ship_all);
  Alcotest.(check bool) "partial aggregation ships least" true
    (Distributed.total_bytes partial < Distributed.total_bytes filtered);
  Alcotest.(check int) "broadcast only for partials" 0 ship_all.Distributed.bytes_broadcast;
  Alcotest.(check int) "two rounds of messages" 8 partial.Distributed.messages;
  (match Distributed.Cluster.create ~sites:0 detail with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sites 0 rejected")

(* --- Grouping sets / ROLLUP / CUBE ------------------------------------ *)

let olap_detail rows =
  Relation.of_list
    (Schema.of_list
       [
         Schema.attr ~rel:"t" "a" Value.Tint;
         Schema.attr ~rel:"t" "b" Value.Tint;
         Schema.attr ~rel:"t" "v" Value.Tint;
       ])
    (List.map Array.of_list rows)

let olap_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 25)
    (QCheck2.Gen.list_repeat 3 Helpers.Gen.value_with_nulls)

let olap_aggs = [ Aggregate.count_star "n"; Aggregate.sum (attr ~rel:"t" "v") "s" ]

let olap_keys = [ (Some "t", "a"); (Some "t", "b") ]

let cube_routes_agree rows =
  let detail = olap_detail rows in
  let a = Olap.cube ~via:`Group_by ~keys:olap_keys ~aggs:olap_aggs detail in
  let b = Olap.cube ~via:`Gmdj ~keys:olap_keys ~aggs:olap_aggs detail in
  Relation.equal_as_multiset a b

let rollup_routes_agree rows =
  let detail = olap_detail rows in
  Relation.equal_as_multiset
    (Olap.rollup ~via:`Group_by ~keys:olap_keys ~aggs:olap_aggs detail)
    (Olap.rollup ~via:`Gmdj ~keys:olap_keys ~aggs:olap_aggs detail)

let test_cube_pinned () =
  let detail =
    olap_detail
      Value.
        [
          [ Int 1; Int 10; Int 100 ];
          [ Int 1; Int 20; Int 1 ];
          [ Int 2; Int 10; Int 10 ];
        ]
  in
  let cube = Olap.cube ~keys:olap_keys ~aggs:olap_aggs detail in
  (* sets: {a,b} -> 3 cells, {a} -> 2, {b} -> 2, {} -> 1. *)
  Alcotest.(check int) "8 cells" 8 (Relation.cardinality cube);
  let grand_total =
    Relation.fold
      (fun acc row ->
        if Value.is_null row.(1) && Value.is_null row.(2) then Some row else acc)
      None cube
  in
  (match grand_total with
  | Some row ->
    Alcotest.(check bool) "count 3" true (Value.equal row.(3) (Value.Int 3));
    Alcotest.(check bool) "sum 111" true (Value.equal row.(4) (Value.Int 111))
  | None -> Alcotest.fail "missing grand-total cell");
  (* The GMDJ route fills the whole cube in one detail scan. *)
  Alcotest.(check int) "rollup has n+1 sets" (2 + 1)
    (Relation.cardinality
       (Ops.project_cols ~distinct:true
          [ (None, "gset") ]
          (Olap.rollup ~keys:olap_keys ~aggs:olap_aggs detail)))

let test_grouping_sets_errors () =
  let detail = olap_detail [] in
  (match Olap.grouping_sets ~sets:[] ~aggs:olap_aggs detail with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty set list rejected");
  match
    Olap.cube
      ~keys:(List.init 13 (fun i -> (None, "c" ^ string_of_int i)))
      ~aggs:olap_aggs detail
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too-wide cube rejected"

let () =
  Alcotest.run "gmdj"
    [
      ( "figure-1",
        [
          Alcotest.test_case "reference" `Quick (test_fig1 `Reference);
          Alcotest.test_case "scan" `Quick (test_fig1 `Scan);
          Alcotest.test_case "hash" `Quick (test_fig1 `Hash);
        ] );
      ( "schema",
        [
          Alcotest.test_case "output schema" `Quick test_output_schema;
          Alcotest.test_case "duplicate names renamed" `Quick test_duplicate_agg_names_renamed;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty detail" `Quick test_empty_detail;
          Alcotest.test_case "empty base" `Quick test_empty_base;
          Alcotest.test_case "completion early exit" `Quick test_early_exit;
        ] );
      ( "properties",
        [
          Helpers.qtest "strategies agree with the definition" pair_gen equivalence_prop;
          Helpers.qtest "completion = eval-then-filter" pair_gen completion_prop;
          Helpers.qtest "aggregate-free completion" pair_gen completion_no_aggs_prop;
          Helpers.qtest "segmented = whole" pair_gen segmented_prop;
          Helpers.qtest ~count:80 "partitioned = whole" pair_gen partitioned_prop;
          Helpers.qtest ~count:120 "maintenance = recompute" pair_gen maintenance_prop;
        ] );
      ( "maintenance",
        [ Alcotest.test_case "min/max and schema rules" `Quick test_maintain_minmax_rules ] );
      ( "distributed",
        [
          Helpers.qtest ~count:60 "strategies = local evaluation" pair_gen distributed_prop;
          Alcotest.test_case "traffic accounting" `Quick test_distributed_traffic;
        ] );
      ( "olap",
        [
          Helpers.qtest ~count:100 "cube: group-by route = gmdj route" olap_gen
            cube_routes_agree;
          Helpers.qtest ~count:100 "rollup: routes agree" olap_gen rollup_routes_agree;
          Alcotest.test_case "pinned cube" `Quick test_cube_pinned;
          Alcotest.test_case "argument validation" `Quick test_grouping_sets_errors;
        ] );
      ( "segmented",
        [ Alcotest.test_case "scan count and bounds" `Quick test_segmented_scan_count ] );
      ( "partitioned",
        [ Alcotest.test_case "stats and bounds" `Quick test_partitioned_stats ] );
    ]
