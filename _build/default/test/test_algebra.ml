(* Extended algebra: schema inference, structural equality, rendering,
   and evaluator edge cases. *)

open Subql_relational
open Subql_gmdj
module A = Subql.Algebra

let attr = Expr.attr

let catalog =
  Query_zoo.mk_catalog
    ( [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ] ],
      [ [ Value.Int 1; Value.Int 5 ] ],
      [] )

let lookup name = Relation.schema (Catalog.find catalog name)

let test_schema_inference () =
  let plan =
    A.Md
      {
        base = A.Rename ("o", A.Table "O");
        detail = A.Rename ("i", A.Table "I");
        blocks =
          [
            Gmdj.block
              [ Aggregate.count_star "cnt"; Aggregate.avg (attr ~rel:"i" "y") "a" ]
              (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k"));
          ];
      }
  in
  let s = A.schema_of ~lookup plan in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check string) "count col" "cnt" (Schema.attr_at s 2).Schema.name;
  Alcotest.(check bool) "avg is float" true
    (Value.equal_ty (Schema.attr_at s 3).Schema.ty Value.Tfloat);
  (* Evaluation produces exactly the inferred schema. *)
  let result = Subql.Eval.eval catalog plan in
  Alcotest.(check bool) "eval schema matches" true (Schema.equal s (Relation.schema result));
  (* Join kinds. *)
  let join kind =
    A.Join
      {
        kind;
        cond = Expr.eq (attr ~rel:"o" "k") (attr ~rel:"i" "k");
        left = A.Rename ("o", A.Table "O");
        right = A.Rename ("i", A.Table "I");
      }
  in
  Alcotest.(check int) "inner join schema" 4 (Schema.arity (A.schema_of ~lookup (join A.Inner)));
  Alcotest.(check int) "semi join schema" 2 (Schema.arity (A.schema_of ~lookup (join A.Semi)));
  Alcotest.(check int) "anti join schema" 2 (Schema.arity (A.schema_of ~lookup (join A.Anti)));
  let grouped =
    A.Group_by
      {
        keys = [ (Some "o", "k") ];
        aggs = [ Aggregate.sum (attr ~rel:"o" "x") "s" ];
        input = A.Rename ("o", A.Table "O");
      }
  in
  Alcotest.(check int) "group by schema" 2 (Schema.arity (A.schema_of ~lookup grouped));
  let rels =
    A.schema_of ~lookup (A.Project_rel ([ "o" ], join A.Inner)) |> Schema.rels
  in
  Alcotest.(check (list string)) "project_rel keeps one alias" [ "o" ] rels

let test_structural_equality () =
  let t = A.Rename ("o", A.Table "O") in
  let sel e = A.Select (e, t) in
  let e1 = Expr.gt (attr ~rel:"o" "x") (Expr.int 1) in
  let e2 = Expr.gt (attr ~rel:"o" "x") (Expr.int 2) in
  Alcotest.(check bool) "equal selects" true (A.equal (sel e1) (sel e1));
  Alcotest.(check bool) "different predicates" false (A.equal (sel e1) (sel e2));
  Alcotest.(check bool) "different nodes" false (A.equal (sel e1) t);
  Alcotest.(check bool) "same occurrence modulo alias" true
    (A.same_occurrence_modulo_alias
       (A.Rename ("a", A.Table "I"))
       (A.Rename ("b", A.Table "I")));
  Alcotest.(check bool) "different tables differ" false
    (A.same_occurrence_modulo_alias
       (A.Rename ("a", A.Table "I"))
       (A.Rename ("b", A.Table "J")))

let test_pp_smoke () =
  (* Every node kind renders without raising and mentions its operator. *)
  let md =
    A.Md
      {
        base = A.Rename ("o", A.Table "O");
        detail = A.Rename ("i", A.Table "I");
        blocks = [ Gmdj.block [ Aggregate.count_star "c" ] (Expr.bool true) ];
      }
  in
  let plans =
    [
      ("Table", A.Table "O");
      ("Select", A.Select (Expr.bool true, A.Table "O"));
      ("Project", A.Project ([ (Expr.int 1, "one") ], A.Table "O"));
      ("ProjectRel", A.Project_rel ([ "o" ], A.Table "O"));
      ("AddRownum", A.Add_rownum ("rid", A.Table "O"));
      ("Product", A.Product (A.Table "O", A.Table "I"));
      ("GroupBy", A.Group_by { keys = []; aggs = []; input = A.Table "O" });
      ("AggregateAll", A.Aggregate_all ([], A.Table "O"));
      ("MD", md);
      ("UnionAll", A.Union_all (A.Table "O", A.Table "O"));
      ("DiffAll", A.Diff_all (A.Table "O", A.Table "O"));
      ("Distinct", A.Distinct (A.Table "O"));
    ]
  in
  List.iter
    (fun (token, plan) ->
      let rendered = Format.asprintf "%a" A.pp plan in
      Alcotest.(check bool) (token ^ " rendered") true
        (String.length rendered > 0
        &&
        let re = Str.regexp_string token in
        (try ignore (Str.search_forward re rendered 0); true with Not_found -> false)))
    plans

let test_eval_errors () =
  (match Subql.Eval.eval catalog (A.Table "Nope") with
  | exception Catalog.Unknown_table "Nope" -> ()
  | _ -> Alcotest.fail "unknown table");
  match Subql.Eval.eval catalog (A.Select (attr ~rel:"o" "x", A.Rename ("o", A.Table "O"))) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "non-boolean selection must be rejected"

let test_catalog () =
  let c = Catalog.create () in
  let rel = Relation.of_list (Schema.of_list [ Schema.attr "x" Value.Tint ]) [ [| Value.Int 1 |] ] in
  Catalog.add c "T" rel;
  Alcotest.(check (list string)) "tables" [ "T" ] (Catalog.tables c);
  let stored = Catalog.find c "T" in
  Alcotest.(check string) "requalified to the table name" "T"
    (Schema.attr_at (Relation.schema stored) 0).Schema.rel;
  Catalog.add c "T" (Relation.empty (Relation.schema rel));
  Alcotest.(check int) "replaced" 0 (Relation.cardinality (Catalog.find c "T"));
  Alcotest.(check bool) "find_opt none" true (Catalog.find_opt c "U" = None)

let () =
  Alcotest.run "algebra"
    [
      ( "core",
        [
          Alcotest.test_case "schema inference" `Quick test_schema_inference;
          Alcotest.test_case "structural equality" `Quick test_structural_equality;
          Alcotest.test_case "plan rendering" `Quick test_pp_smoke;
          Alcotest.test_case "evaluator errors" `Quick test_eval_errors;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
    ]
