(* Optimizer: coalescing (Prop. 4.1), selection push-up (Ex. 4.1), and
   completion detection (Thms 4.1/4.2) — plan shapes and semantics. *)

open Subql_relational
open Subql_gmdj
open Subql_nested
module N = Nested_ast
module A = Subql.Algebra

let attr = Expr.attr

let count_nodes pred alg =
  let n = ref 0 in
  let rec go a =
    if pred a then incr n;
    ignore
      (Subql.Optimize.map_children
         (fun c ->
           go c;
           c)
         a)
  in
  go alg;
  !n

let count_mds = count_nodes (function A.Md _ | A.Md_completed _ -> true | _ -> false)

let count_completed = count_nodes (function A.Md_completed _ -> true | _ -> false)

let find_completion alg =
  let found = ref None in
  let rec go a =
    (match a with A.Md_completed { completion; _ } -> found := Some completion | _ -> ());
    ignore
      (Subql.Optimize.map_children
         (fun c ->
           go c;
           c)
         a)
  in
  go alg;
  !found

let coalesce_only = Subql.Optimize.only ~coalesce:true ()

let completion_only = Subql.Optimize.only ~completion:true ()

(* --- Coalescing -------------------------------------------------------- *)

let test_coalesce_same_table () =
  let query = List.assoc "two-subqueries-same-table" Query_zoo.queries in
  let basic = Subql.Transform.to_algebra query in
  let coalesced = Subql.Optimize.optimize ~flags:coalesce_only basic in
  Alcotest.(check int) "two MDs before" 2 (count_mds basic);
  Alcotest.(check int) "one MD after" 1 (count_mds coalesced)

let test_no_coalesce_different_tables () =
  let query = List.assoc "two-subqueries-or" Query_zoo.queries in
  let basic = Subql.Transform.to_algebra query in
  let coalesced = Subql.Optimize.optimize ~flags:coalesce_only basic in
  Alcotest.(check int) "different detail tables stay apart" (count_mds basic)
    (count_mds coalesced)

let test_no_coalesce_dependent_blocks () =
  (* The outer blocks read the inner GMDJ's count column: merging would
     change meaning, so the rule must not fire. *)
  let detail = A.Rename ("i", A.Table "I") in
  let inner =
    A.Md
      {
        base = A.Rename ("o", A.Table "O");
        detail;
        blocks = [ Gmdj.block [ Aggregate.count_star "c1" ] (Expr.bool true) ];
      }
  in
  let outer =
    A.Md
      {
        base = inner;
        detail;
        blocks =
          [
            Gmdj.block
              [ Aggregate.count_star "c2" ]
              (Expr.gt (attr "c1") (Expr.int 0));
          ];
      }
  in
  let optimized = Subql.Optimize.optimize ~flags:coalesce_only outer in
  Alcotest.(check int) "still two MDs" 2 (count_mds optimized)

let test_coalesce_requalifies () =
  (* Same underlying table under different aliases: outer θs must be
     rewritten to the surviving alias. *)
  let mk alias cnt =
    ( A.Rename (alias, A.Table "I"),
      Gmdj.block
        [ Aggregate.count_star cnt ]
        (Expr.eq (attr ~rel:alias "k") (attr ~rel:"o" "k")) )
  in
  let d1, b1 = mk "i1" "c1" in
  let d2, b2 = mk "i2" "c2" in
  let plan =
    A.Md
      {
        base = A.Md { base = A.Rename ("o", A.Table "O"); detail = d1; blocks = [ b1 ] };
        detail = d2;
        blocks = [ b2 ];
      }
  in
  match Subql.Optimize.optimize ~flags:coalesce_only plan with
  | A.Md { blocks = [ _; rewritten ]; _ } ->
    Alcotest.(check (list string)) "θ requalified to i1" [ "i1"; "o" ]
      (List.sort String.compare (Expr.qualifiers rewritten.Gmdj.theta))
  | other -> Alcotest.failf "expected a single merged MD, got %a" A.pp other

let test_selection_push_up () =
  (* Ex. 4.1's second step: a count-selection between two coalescible
     GMDJs is hoisted above the merged operator. *)
  let query = List.assoc "two-subqueries-same-table" Query_zoo.queries in
  let stack, cond = Subql.Transform.where_condition query in
  let with_mid_selection =
    match stack with
    | A.Md { base = A.Md _ as inner; detail; blocks } ->
      A.Md { base = A.Select (Expr.bool true, inner); detail; blocks }
    | other -> other
  in
  let coalesced = Subql.Optimize.optimize ~flags:coalesce_only with_mid_selection in
  ignore cond;
  Alcotest.(check int) "merged through the selection" 1 (count_mds coalesced);
  match coalesced with
  | A.Select (_, A.Md _) -> ()
  | other -> Alcotest.failf "expected Select over merged MD, got %a" A.pp other

(* --- Completion detection ----------------------------------------------- *)

let test_completion_exists () =
  let query = List.assoc "exists" Query_zoo.queries in
  let optimized = Subql.Optimize.optimize ~flags:completion_only (Subql.Transform.to_algebra query) in
  match find_completion optimized with
  | Some c ->
    Alcotest.(check int) "one require" 1 (List.length c.Gmdj.require_fired);
    Alcotest.(check int) "no kills" 0 (List.length c.Gmdj.kill_when);
    Alcotest.(check bool) "aggregates skipped" false c.Gmdj.maintain_aggregates
  | None -> Alcotest.fail "completion did not fire for EXISTS"

let test_completion_not_exists_is_kill () =
  let query = List.assoc "not-exists" Query_zoo.queries in
  let optimized = Subql.Optimize.optimize ~flags:completion_only (Subql.Transform.to_algebra query) in
  match find_completion optimized with
  | Some c ->
    Alcotest.(check int) "one kill" 1 (List.length c.Gmdj.kill_when);
    Alcotest.(check int) "no requires" 0 (List.length c.Gmdj.require_fired)
  | None -> Alcotest.fail "completion did not fire for NOT EXISTS"

let test_completion_all_pattern () =
  let query = List.assoc "all-ne" Query_zoo.queries in
  let optimized = Subql.Optimize.optimize (Subql.Transform.to_algebra query) in
  match find_completion optimized with
  | Some c ->
    Alcotest.(check int) "ALL compiles to a kill" 1 (List.length c.Gmdj.kill_when);
    (match c.Gmdj.kill_when with
    | [ Expr.And (_, Expr.Not (Expr.Is_true _)) ] -> ()
    | [ other ] -> Alcotest.failf "unexpected kill shape %a" Expr.pp other
    | _ -> Alcotest.fail "expected exactly one kill")
  | None -> Alcotest.fail "completion did not fire for ALL"

let test_completion_respects_needed_aggregates () =
  (* The aggregate column feeds the final projection: maintenance must
     stay on.  Build Select(cnt > 0, Md) and project the count out. *)
  let md =
    A.Md
      {
        base = A.Rename ("o", A.Table "O");
        detail = A.Rename ("i", A.Table "I");
        blocks =
          [
            Gmdj.block
              [ Aggregate.count_star "cnt" ]
              (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k"));
          ];
      }
  in
  let keeps = A.Project ([ (attr "cnt", "n") ], A.Select (Expr.gt (attr "cnt") (Expr.int 0), md)) in
  (match Subql.Optimize.optimize ~flags:completion_only keeps with
  | A.Project (_, A.Md_completed { completion; _ }) ->
    Alcotest.(check bool) "maintained when projected" true completion.Gmdj.maintain_aggregates
  | other -> Alcotest.failf "expected completed plan, got %a" A.pp other);
  let drops =
    A.Project
      ( [ (attr ~rel:"o" "k", "k") ],
        A.Select (Expr.gt (attr "cnt") (Expr.int 0), md) )
  in
  match Subql.Optimize.optimize ~flags:completion_only drops with
  | A.Project (_, A.Md_completed { completion; _ }) ->
    Alcotest.(check bool) "skipped when dropped" false completion.Gmdj.maintain_aggregates
  | other -> Alcotest.failf "expected completed plan, got %a" A.pp other

let test_completion_residual_preserved () =
  (* Non-count conjuncts must survive in a residual selection when
     selection push-down is off... *)
  let query = List.assoc "mixed-atoms" Query_zoo.queries in
  let optimized = Subql.Optimize.optimize ~flags:completion_only (Subql.Transform.to_algebra query) in
  Alcotest.(check int) "one completed MD" 1 (count_completed optimized);
  let has_residual_select =
    count_nodes (function A.Select (_, A.Md_completed _) -> true | _ -> false) optimized
  in
  Alcotest.(check int) "residual Select kept" 1 has_residual_select;
  (* ... and with push-down on, those base-only conjuncts move below the
     GMDJ instead, leaving a pure completion. *)
  let full = Subql.Optimize.optimize (Subql.Transform.to_algebra query) in
  Alcotest.(check int) "still one completed MD" 1 (count_completed full);
  let pushed_into_base =
    count_nodes
      (function A.Md_completed { base = A.Select _; _ } -> true | _ -> false)
      full
  in
  Alcotest.(check int) "atoms pushed below the GMDJ" 1 pushed_into_base

(* --- Selection push-down -------------------------------------------------- *)

let pushdown_only = Subql.Optimize.only ~pushdown:true ()

let test_pushdown_product_to_join () =
  let plan =
    A.Select
      ( Expr.conjoin
          [
            Expr.eq (attr ~rel:"a" "k") (attr ~rel:"b" "k");
            Expr.gt (attr ~rel:"a" "x") (Expr.int 0);
            Expr.lt (attr ~rel:"b" "y") (Expr.int 5);
          ],
        A.Product (A.Rename ("a", A.Table "O"), A.Rename ("b", A.Table "I")) )
  in
  match Subql.Optimize.optimize ~flags:pushdown_only plan with
  | A.Join { kind = A.Inner; cond; left = A.Select (le, _); right = A.Select (re, _) } ->
    Alcotest.(check (list string)) "join cond on both" [ "a"; "b" ]
      (List.sort String.compare (Expr.qualifiers cond));
    Alcotest.(check (list string)) "left select" [ "a" ] (Expr.qualifiers le);
    Alcotest.(check (list string)) "right select" [ "b" ] (Expr.qualifiers re)
  | other -> Alcotest.failf "expected join over pushed selects, got %a" A.pp other

let test_pushdown_below_md () =
  let query = List.assoc "multi-from" Query_zoo.queries in
  let optimized = Subql.Optimize.optimize ~flags:pushdown_only (Subql.Transform.to_algebra query) in
  (* The a.k = b.k join predicate must have moved below the GMDJ and
     turned the base product into a join. *)
  let md_over_join =
    count_nodes
      (function
        | A.Md { base = A.Join { kind = A.Inner; _ }; _ } -> true | _ -> false)
      optimized
  in
  Alcotest.(check int) "base product became a join" 1 md_over_join

let test_pushdown_keeps_count_conditions () =
  let query = List.assoc "exists" Query_zoo.queries in
  let plan = Subql.Transform.to_algebra query in
  Alcotest.(check bool) "count-only selections untouched" true
    (Subql.Optimize.optimize ~flags:pushdown_only plan = plan)

(* --- Semantics preservation on the whole zoo (belt and braces: the
   transform suite also covers this; here with both rules isolated) ---- *)

let optimize_preserves_prop flags db =
  let catalog = Query_zoo.mk_catalog db in
  List.for_all
    (fun (_, query) ->
      let plan = Subql.Transform.to_algebra query in
      Relation.equal_as_multiset (Subql.Eval.eval catalog plan)
        (Subql.Eval.eval catalog (Subql.Optimize.optimize ~flags plan)))
    Query_zoo.queries

let () =
  Alcotest.run "optimize"
    [
      ( "coalesce",
        [
          Alcotest.test_case "same detail table merges" `Quick test_coalesce_same_table;
          Alcotest.test_case "different tables stay" `Quick test_no_coalesce_different_tables;
          Alcotest.test_case "dependent blocks stay" `Quick test_no_coalesce_dependent_blocks;
          Alcotest.test_case "aliases requalified" `Quick test_coalesce_requalifies;
          Alcotest.test_case "selection push-up" `Quick test_selection_push_up;
        ] );
      ( "completion",
        [
          Alcotest.test_case "exists -> require-fired" `Quick test_completion_exists;
          Alcotest.test_case "not exists -> kill" `Quick test_completion_not_exists_is_kill;
          Alcotest.test_case "ALL -> kill with IS TRUE" `Quick test_completion_all_pattern;
          Alcotest.test_case "aggregate need detection" `Quick
            test_completion_respects_needed_aggregates;
          Alcotest.test_case "residual preserved" `Quick test_completion_residual_preserved;
        ] );
      ( "pushdown",
        [
          Alcotest.test_case "product becomes join" `Quick test_pushdown_product_to_join;
          Alcotest.test_case "join predicate below MD" `Quick test_pushdown_below_md;
          Alcotest.test_case "count conditions stay" `Quick test_pushdown_keeps_count_conditions;
        ] );
      ( "semantics",
        [
          Helpers.qtest ~count:50 "coalesce preserves" Query_zoo.db_gen
            (optimize_preserves_prop coalesce_only);
          Helpers.qtest ~count:50 "completion preserves" Query_zoo.db_gen
            (optimize_preserves_prop completion_only);
          Helpers.qtest ~count:50 "pushdown preserves" Query_zoo.db_gen
            (optimize_preserves_prop pushdown_only);
          Helpers.qtest ~count:50 "all preserve" Query_zoo.db_gen
            (optimize_preserves_prop Subql.Optimize.all);
        ] );
    ]
