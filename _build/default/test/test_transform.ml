(* SubqueryToGMDJ correctness: for every subquery form of Table 1 and the
   nesting shapes of Section 3, the translated (and optimized) algebra
   must agree with the naive tuple-iteration semantics on random data
   with NULLs and duplicates. *)

open Subql_relational
open Subql_nested
module N = Nested_ast

let attr = Expr.attr

let q = Query_zoo.q

let mk_catalog = Query_zoo.mk_catalog

let db_gen = Query_zoo.db_gen

let queries = Query_zoo.queries

(* --- engines --------------------------------------------------------- *)

let engines (catalog : Catalog.t) (query : N.query) : (string * (unit -> Relation.t)) list =
  [
    ("naive-plain", fun () -> Naive_eval.eval ~mode:Naive_eval.Plain catalog query);
    ("naive-smart", fun () -> Naive_eval.eval ~mode:Naive_eval.Smart catalog query);
    ("gmdj", fun () -> Subql.Eval.eval catalog (Subql.Transform.to_algebra query));
    ( "gmdj-scan",
      fun () ->
        Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
          (Subql.Transform.to_algebra query) );
    ( "gmdj-optimized",
      fun () ->
        Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra query))
    );
    ( "gmdj-coalesce-only",
      fun () ->
        Subql.Eval.eval catalog
          (Subql.Optimize.optimize
             ~flags:(Subql.Optimize.only ~coalesce:true ())
             (Subql.Transform.to_algebra query)) );
    ( "gmdj-completion-only",
      fun () ->
        Subql.Eval.eval catalog
          (Subql.Optimize.optimize
             ~flags:(Subql.Optimize.only ~completion:true ())
             (Subql.Transform.to_algebra query)) );
  ]

let agree name query db =
  let catalog = mk_catalog db in
  match engines catalog query with
  | [] -> true
  | (_, first) :: rest ->
    let reference = first () in
    List.for_all
      (fun (engine, f) ->
        let result = f () in
        if Relation.equal_as_multiset reference result then true
        else begin
          Format.eprintf "engine %s disagrees on %s:@.reference:@.%a@.got:@.%a@." engine name
            Relation.pp reference Relation.pp result;
          false
        end)
      rest

let property_tests =
  List.map
    (fun (name, query) -> Helpers.qtest ~count:120 ("agree: " ^ name) db_gen (agree name query))
    queries

(* --- pinned concrete cases ------------------------------------------- *)

(* The footnote-2 pitfall: x >all (empty) is TRUE even though
   x > max(empty) is unknown.  Both engines must agree on the dialect
   semantics (ALL over the empty range selects; the aggregate comparison
   does not). *)
let test_all_vs_max_on_empty () =
  let catalog =
    mk_catalog ([ [ Value.Int 1; Value.Int 5 ] ], (* O = {(1,5)} *) [], [])
  in
  let all_q =
    q (N.all_ (attr ~rel:"o" "x") Expr.Gt (N.table "I") "i" ~col:"y")
  in
  let max_q =
    q (N.agg_cmp (attr ~rel:"o" "x") Expr.Gt (Aggregate.Max (attr ~rel:"i" "y")) (N.table "I") "i")
  in
  let run query = Subql.Eval.eval catalog (Subql.Transform.to_algebra query) in
  Alcotest.(check int) "ALL over empty selects" 1 (Relation.cardinality (run all_q));
  Alcotest.(check int) "x > max(empty) does not" 0 (Relation.cardinality (run max_q));
  Alcotest.(check int) "naive agrees on ALL" 1
    (Relation.cardinality (Naive_eval.eval catalog all_q));
  Alcotest.(check int) "naive agrees on max" 0
    (Relation.cardinality (Naive_eval.eval catalog max_q))

let test_unsupported_unknown_alias () =
  let query =
    q
      (N.exists
         ~where:(N.atom (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"nosuch" "k")))
         (N.table "I") "i")
  in
  let catalog = mk_catalog ([], [], []) in
  match Subql.Eval.eval catalog (Subql.Transform.to_algebra query) with
  | exception Schema.Unknown_attribute _ -> ()
  | _ -> Alcotest.fail "expected Unknown_attribute for a reference to an unbound alias"

(* Example 3.1: a single EXISTS over Hours/Flow translates to exactly
   σ[cnt > 0](MD(Hours, Flow, count, θ_S)). *)
let test_example_3_1_shape () =
  let query =
    N.query ~base:(N.table "Hours") ~alias:"h"
      (N.exists
         ~where:
           (N.atom
              (Expr.conjoin
                 [
                   Expr.eq (attr ~rel:"fi" "DestIP") (Expr.str "167.167.167.0");
                   Expr.ge (attr ~rel:"fi" "StartTime") (attr ~rel:"h" "StartInterval");
                   Expr.lt (attr ~rel:"fi" "StartTime") (attr ~rel:"h" "EndInterval");
                 ]))
         (N.table "Flow") "fi")
  in
  match Subql.Transform.to_algebra query with
  | Subql.Algebra.Project_rel
      ( [ "h" ],
        Subql.Algebra.Select
          ( Expr.Cmp (Expr.Gt, Expr.Attr (None, _), Expr.Const (Value.Int 0)),
            Subql.Algebra.Md
              {
                base = Subql.Algebra.Rename ("h", Subql.Algebra.Table "Hours");
                detail = Subql.Algebra.Rename ("fi", Subql.Algebra.Table "Flow");
                blocks = [ { Subql_gmdj.Gmdj.aggs = [ { Aggregate.func = Aggregate.Count_star; _ } ]; _ } ];
              } ) ) ->
    ()
  | other -> Alcotest.failf "unexpected shape for Example 3.1:@.%a" Subql.Algebra.pp other

(* Example 3.2: three same-level subqueries chain three GMDJs before
   optimization; Example 4.1: coalescing folds them into one. *)
let test_example_3_2_and_4_1_shapes () =
  let sub alias dest =
    N.atom
      (Expr.and_
         (Expr.eq (attr ~rel:alias "SourceIP") (attr ~rel:"f0" "SourceIP"))
         (Expr.eq (attr ~rel:alias "DestIP") (Expr.str dest)))
  in
  let query =
    N.query
      ~base:(N.Bproject { cols = [ "SourceIP" ]; distinct = true; input = N.table "Flow" })
      ~alias:"f0"
      (N.pand
         (N.not_exists ~where:(sub "f1" "167.167.167.0") (N.table "Flow") "f1")
         (N.pand
            (N.exists ~where:(sub "f2" "168.168.168.0") (N.table "Flow") "f2")
            (N.not_exists ~where:(sub "f3" "169.169.169.0") (N.table "Flow") "f3")))
  in
  let count_mds alg =
    let n = ref 0 in
    let rec go a =
      (match a with
      | Subql.Algebra.Md _ | Subql.Algebra.Md_completed _ -> incr n
      | _ -> ());
      ignore
        (Subql.Optimize.map_children
           (fun c ->
             go c;
             c)
           a)
    in
    go alg;
    !n
  in
  let basic = Subql.Transform.to_algebra query in
  Alcotest.(check int) "Example 3.2: three chained GMDJs" 3 (count_mds basic);
  let coalesced =
    Subql.Optimize.optimize ~flags:(Subql.Optimize.only ~coalesce:true ()) basic
  in
  Alcotest.(check int) "Example 4.1: one GMDJ after coalescing" 1 (count_mds coalesced)

(* Example 3.4: the non-neighboring reference in the double negation
   pushes a distinct copy of the User columns into the inner GMDJ's
   base-values expression (a product with the Hours occurrence). *)
let test_example_3_4_shape () =
  let theta_f =
    Expr.conjoin
      [
        Expr.ge (attr ~rel:"f" "StartTime") (attr ~rel:"h" "StartInterval");
        Expr.lt (attr ~rel:"f" "StartTime") (attr ~rel:"h" "EndInterval");
        Expr.eq (attr ~rel:"f" "SourceIP") (attr ~rel:"u" "IPAddress");
      ]
  in
  let query =
    N.query ~base:(N.table "User") ~alias:"u"
      (N.not_exists
         ~where:(N.not_exists ~where:(N.atom theta_f) (N.table "Flow") "f")
         (N.table "Hours") "h")
  in
  let plan = Subql.Transform.to_algebra query in
  let found_pushed_product = ref false in
  let rec go a =
    (match a with
    | Subql.Algebra.Md
        {
          base =
            Subql.Algebra.Product
              ( Subql.Algebra.Rename
                  (_, Subql.Algebra.Project_cols { distinct = true; cols = [ (Some "u", "IPAddress") ]; _ }),
                Subql.Algebra.Rename ("h", _) );
          _;
        } ->
      found_pushed_product := true
    | _ -> ());
    ignore
      (Subql.Optimize.map_children
         (fun c ->
           go c;
           c)
         a)
  in
  go plan;
  Alcotest.(check bool) "distinct User copy embedded in the inner base" true
    !found_pushed_product

let () =
  Alcotest.run "transform"
    [
      ("table-1-and-nesting", property_tests);
      ( "pinned",
        [
          Alcotest.test_case "all vs max on empty range" `Quick test_all_vs_max_on_empty;
          Alcotest.test_case "unknown alias is rejected" `Quick test_unsupported_unknown_alias;
          Alcotest.test_case "Example 3.1 plan shape" `Quick test_example_3_1_shape;
          Alcotest.test_case "Examples 3.2/4.1 coalescing" `Quick test_example_3_2_and_4_1_shapes;
          Alcotest.test_case "Example 3.4 push-down shape" `Quick test_example_3_4_shape;
        ] );
    ]
