(** Grouping sets, ROLLUP and CUBE — the complex-OLAP groupings the
    GMDJ was designed to express (Gray et al.'s data cube and the
    groupwise processing of Chatziantoniou & Ross, both motivating the
    MD-join line of work).

    Each grouping set contributes one group row per distinct key
    combination; key columns that are not part of a row's grouping set
    are NULL, as in SQL.  The result carries a leading [gset] column
    with the 0-based index of the grouping set a row belongs to (SQL's
    GROUPING() disambiguator for genuine NULL keys).

    Two evaluation routes produce identical results:
    - [`Group_by] — one hash aggregation per grouping set, unioned;
    - [`Gmdj] — a single GMDJ whose base-values relation is the union
      of the distinct padded key combinations and whose θ matches each
      base row to its range by grouping-set id and null-safe key
      equality: {e every cell of every grouping set is filled in one
      scan of the detail relation}. *)

open Subql_relational

type via = [ `Group_by | `Gmdj ]

val grouping_sets :
  ?via:via ->
  sets:(string option * string) list list ->
  aggs:Aggregate.spec list ->
  Relation.t ->
  Relation.t
(** Output schema: [gset : int], the union of all referenced key columns
    (first-appearance order, original types), then the aggregates.
    @raise Invalid_argument on an empty set list. *)

val rollup :
  ?via:via ->
  keys:(string option * string) list ->
  aggs:Aggregate.spec list ->
  Relation.t ->
  Relation.t
(** [rollup ~keys] is the grouping sets [keys; keys-minus-last; ...; []]. *)

val cube :
  ?via:via ->
  keys:(string option * string) list ->
  aggs:Aggregate.spec list ->
  Relation.t ->
  Relation.t
(** All [2^n] subsets of [keys] (n ≤ 12 to keep the cube bounded).
    @raise Invalid_argument when [keys] has more than 12 columns. *)
