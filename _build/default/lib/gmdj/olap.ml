open Subql_relational

type via = [ `Group_by | `Gmdj ]

(* Key bookkeeping: the union of all referenced columns, in
   first-appearance order, with their positions in the detail schema. *)
type keyinfo = { ref_ : string option * string; pos : int; attr : Schema.attr }

let collect_keys detail sets =
  let schema = Relation.schema detail in
  List.fold_left
    (fun acc set ->
      List.fold_left
        (fun acc (rel, name) ->
          if List.exists (fun k -> k.ref_ = (rel, name)) acc then acc
          else
            let pos = Schema.find schema ?rel name in
            acc @ [ { ref_ = (rel, name); pos; attr = Schema.attr_at schema pos } ])
        acc set)
    [] sets

(* The shared output prefix: gset plus one column per key (bare names,
   uniquified), so both routes produce positionally identical schemas. *)
let key_schema keys =
  List.fold_left
    (fun s k ->
      let name = Schema.fresh_name s k.attr.Schema.name in
      Schema.concat s [| Schema.attr name k.attr.Schema.ty |])
    (Schema.of_list [ Schema.attr "gset" Value.Tint ])
    keys

let member set k = List.mem k.ref_ set

(* --- route 1: one aggregation per set, padded and unioned ------------- *)

let via_group_by ~sets ~aggs ~keys detail =
  let prefix = key_schema keys in
  let agg_attrs =
    List.map
      (fun spec ->
        Schema.attr spec.Aggregate.name
          (Aggregate.output_ty [| Relation.schema detail |] spec))
      aggs
  in
  let out_schema = Schema.concat prefix (Schema.of_list agg_attrs) in
  let rows = Vec.create ~dummy:Tuple.empty () in
  List.iteri
    (fun set_i set ->
      let set_keys = List.filter (member set) keys in
      let grouped =
        match set_keys with
        | [] -> Ops.aggregate_all aggs detail
        | _ -> Ops.group_by ~keys:(List.map (fun k -> k.ref_) set_keys) ~aggs detail
      in
      (* Grouped schema: set keys (in [keys] order) then aggregates. *)
      Relation.iter
        (fun row ->
          let padded = Array.make (Schema.arity out_schema) Value.Null in
          padded.(0) <- Value.Int set_i;
          let set_col = ref 0 in
          List.iteri
            (fun key_i k ->
              if member set k then begin
                padded.(key_i + 1) <- row.(!set_col);
                incr set_col
              end)
            keys;
          List.iteri
            (fun agg_i _ ->
              padded.(List.length keys + 1 + agg_i) <- row.(List.length set_keys + agg_i))
            aggs;
          Vec.push rows padded)
        grouped)
    sets;
  Relation.create ~check:false out_schema (Vec.to_array rows)

(* --- route 2: one GMDJ over the union of padded key combinations ------ *)

let via_gmdj ~sets ~aggs ~keys detail =
  let prefix = key_schema keys in
  (* Base-values relation: for each grouping set, the distinct padded key
     combinations tagged with the set id. *)
  let base_rows = Vec.create ~dummy:Tuple.empty () in
  List.iteri
    (fun set_i set ->
      let set_keys = List.filter (member set) keys in
      let combos =
        match set_keys with
        | [] ->
          Relation.create ~check:false (Schema.of_list []) [| [||] |]
        | _ ->
          Ops.project_cols ~distinct:true (List.map (fun k -> k.ref_) set_keys) detail
      in
      Relation.iter
        (fun row ->
          let padded = Array.make (Schema.arity prefix) Value.Null in
          padded.(0) <- Value.Int set_i;
          let set_col = ref 0 in
          List.iteri
            (fun key_i k ->
              if member set k then begin
                padded.(key_i + 1) <- row.(!set_col);
                incr set_col
              end)
            keys;
          Vec.push base_rows padded)
        combos)
    sets;
  let base =
    Relation.create ~check:false (Schema.rename_rel "gs" prefix) (Vec.to_array base_rows)
  in
  (* θ: the detail row belongs to a base cell iff for the cell's grouping
     set every set key matches null-safely.  One disjunct per set. *)
  let theta =
    Expr.disjoin
      (List.mapi
         (fun set_i set ->
           let set_conds =
             List.filter_map
               (fun (key_i, k) ->
                 if member set k then
                   let rel, name = k.ref_ in
                   let base_attr = Schema.attr_at (Relation.schema base) (key_i + 1) in
                   Some
                     (Expr.Null_safe_eq
                        (Expr.attr ~rel:"gs" base_attr.Schema.name, Expr.Attr (rel, name)))
                 else None)
               (List.mapi (fun i k -> (i, k)) keys)
           in
           Expr.conjoin
             (Expr.eq (Expr.attr ~rel:"gs" "gset") (Expr.int set_i) :: set_conds))
         sets)
  in
  let result = Gmdj.eval ~base ~detail [ Gmdj.block aggs theta ] in
  (* Strip the "gs" qualifier so both routes agree on the schema. *)
  Relation.create ~check:false
    (Schema.of_list
       (List.map
          (fun a -> { a with Schema.rel = "" })
          (Schema.to_list (Relation.schema result))))
    (Relation.rows result)

let grouping_sets ?(via = `Gmdj) ~sets ~aggs detail =
  if sets = [] then invalid_arg "Olap.grouping_sets: no grouping sets";
  let keys = collect_keys detail sets in
  match via with
  | `Group_by -> via_group_by ~sets ~aggs ~keys detail
  | `Gmdj -> via_gmdj ~sets ~aggs ~keys detail

let rollup ?via ~keys ~aggs detail =
  let rec prefixes = function [] -> [ [] ] | _ :: _ as l -> l :: prefixes (List.rev (List.tl (List.rev l))) in
  grouping_sets ?via ~sets:(prefixes keys) ~aggs detail

let cube ?via ~keys ~aggs detail =
  if List.length keys > 12 then invalid_arg "Olap.cube: too many key columns";
  let rec subsets = function
    | [] -> [ [] ]
    | k :: rest ->
      let without = subsets rest in
      List.map (fun s -> k :: s) without @ without
  in
  grouping_sets ?via ~sets:(subsets keys) ~aggs detail
