lib/gmdj/gmdj.mli: Aggregate Expr Format Relation Schema Subql_relational
