lib/gmdj/olap.mli: Aggregate Relation Subql_relational
