lib/gmdj/distributed.mli: Gmdj Relation Subql_relational
