lib/gmdj/gmdj.ml: Aggregate Array Domain Expr Format Index List Relation Schema Seq Subql_relational Tuple Vec
