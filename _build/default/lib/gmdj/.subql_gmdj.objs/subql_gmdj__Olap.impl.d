lib/gmdj/olap.ml: Aggregate Array Expr Gmdj List Ops Relation Schema Subql_relational Tuple Value Vec
