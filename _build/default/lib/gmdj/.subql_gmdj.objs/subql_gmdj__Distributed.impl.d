lib/gmdj/distributed.ml: Aggregate Array Expr Fun Gmdj List Ops Option Relation Schema String Subql_relational Tuple Value Vec
