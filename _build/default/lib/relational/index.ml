module Key = struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end

module H = Hashtbl.Make (Key)

type t = { cols : int array; table : int Vec.t H.t }

let key_cols cols (row : Tuple.t) =
  let n = Array.length cols in
  let rec has_null i = i < n && (Value.is_null row.(cols.(i)) || has_null (i + 1)) in
  if has_null 0 then None else Some (Array.map (fun c -> row.(c)) cols)

let build_rows rows cols =
  let table = H.create (max 16 (Array.length rows)) in
  Array.iteri
    (fun i row ->
      match key_cols cols row with
      | None -> ()
      | Some key -> (
        match H.find_opt table key with
        | Some v -> Vec.push v i
        | None ->
          let v = Vec.create ~capacity:2 ~dummy:0 () in
          Vec.push v i;
          H.add table key v))
    rows;
  { cols; table }

let build rel cols = build_rows (Relation.rows rel) cols

let probe t key =
  if Array.exists Value.is_null key then []
  else match H.find_opt t.table key with Some v -> Vec.to_list v | None -> []

let probe_iter t key f =
  if not (Array.exists Value.is_null key) then
    match H.find_opt t.table key with Some v -> Vec.iter f v | None -> ()

let key_of t row = key_cols t.cols row

let cardinality t = H.length t.table
