(** A named collection of relations (the database instance). *)

type t

exception Unknown_table of string

val create : unit -> t

val add : t -> string -> Relation.t -> unit
(** Registers the relation under [name]; its attributes are requalified
    to [name] so that unaliased references resolve naturally.  Replaces
    any previous binding. *)

val find : t -> string -> Relation.t
(** @raise Unknown_table when absent. *)

val find_opt : t -> string -> Relation.t option

val of_list : (string * Relation.t) list -> t

val tables : t -> string list
(** Sorted table names. *)
