lib/relational/expr.ml: Array Bool3 Format List Schema Tuple Value
