lib/relational/expr.mli: Bool3 Format Schema Tuple Value
