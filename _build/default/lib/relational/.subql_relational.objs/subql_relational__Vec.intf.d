lib/relational/vec.mli:
