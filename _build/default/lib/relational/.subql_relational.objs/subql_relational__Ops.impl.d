lib/relational/ops.ml: Aggregate Array Expr Hashtbl Index List Option Relation Schema Tuple Value Vec
