lib/relational/ops.mli: Aggregate Expr Relation
