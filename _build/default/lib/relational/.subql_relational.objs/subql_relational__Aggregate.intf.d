lib/relational/aggregate.mli: Expr Format Schema Tuple Value
