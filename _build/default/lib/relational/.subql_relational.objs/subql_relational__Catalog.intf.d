lib/relational/catalog.mli: Relation
