lib/relational/index.ml: Array Hashtbl Relation Tuple Value Vec
