lib/relational/catalog.ml: Hashtbl List Relation String
