lib/relational/table_io.mli: Relation Schema
