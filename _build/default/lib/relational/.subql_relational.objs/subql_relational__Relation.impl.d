lib/relational/relation.ml: Array Format Printf Schema Seq String Tuple Value
