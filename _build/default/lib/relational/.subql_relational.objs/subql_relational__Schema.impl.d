lib/relational/schema.ml: Array Format List Printf Value
