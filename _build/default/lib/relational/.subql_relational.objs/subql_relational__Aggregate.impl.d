lib/relational/aggregate.ml: Expr Format Option Printf Tuple Value
