lib/relational/bool3.ml: Format
