lib/relational/table_io.ml: Array Fun In_channel List Printf Relation Schema String Tuple Value Vec
