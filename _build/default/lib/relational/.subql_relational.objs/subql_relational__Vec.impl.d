lib/relational/vec.ml: Array
