lib/relational/bool3.mli: Format
