(** Kleene three-valued logic.

    SQL predicates evaluate to [True], [False] or [Unknown]; the latter
    arises from comparisons involving NULL.  Selections keep a row only
    when the predicate is [True] ("where-clause truncation"). *)

type t = True | False | Unknown

val of_bool : bool -> t

val to_bool : t -> bool
(** [to_bool b3] is [true] iff [b3 = True] (truncation semantics). *)

val not_ : t -> t

val and_ : t -> t -> t

val or_ : t -> t -> t

val ( &&& ) : t -> t -> t

val ( ||| ) : t -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
