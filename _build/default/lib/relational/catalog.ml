type t = (string, Relation.t) Hashtbl.t

exception Unknown_table of string

let create () = Hashtbl.create 16

let add t name rel = Hashtbl.replace t name (Relation.rename name rel)

let find t name =
  match Hashtbl.find_opt t name with
  | Some rel -> rel
  | None -> raise (Unknown_table name)

let find_opt = Hashtbl.find_opt

let of_list bindings =
  let t = create () in
  List.iter (fun (name, rel) -> add t name rel) bindings;
  t

let tables t = Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare
