(** Hash indexes on column subsets.

    Keys are projected value tuples compared with grouping equality,
    {e except} that rows with a NULL in any key column are excluded:
    an SQL equi-condition can never evaluate to true on a NULL key, so
    such rows cannot match through the index.  [probe] with a NULL in
    the key likewise returns nothing. *)

type t

val build : Relation.t -> int array -> t
(** [build rel cols] indexes [rel] on the column positions [cols]. *)

val build_rows : Tuple.t array -> int array -> t
(** Index a bare row array. *)

val probe : t -> Tuple.t -> int list
(** [probe idx key] returns the row positions whose key equals [key]
    (a tuple of exactly the key columns), in insertion order. *)

val probe_iter : t -> Tuple.t -> (int -> unit) -> unit

val key_of : t -> Tuple.t -> Tuple.t option
(** Extract the key columns of a full row; [None] if any is NULL. *)

val cardinality : t -> int
(** Number of distinct keys. *)
