(** CSV import/export for relations.

    A deliberately simple dialect: comma separator, no quoting (cells
    containing commas or newlines are rejected on export), first line is
    the header of qualified attribute names, empty cells are NULL. *)

val to_csv_channel : out_channel -> Relation.t -> unit

val to_csv_file : string -> Relation.t -> unit

val of_csv_channel : Schema.t -> in_channel -> Relation.t
(** Reads rows against the given schema; the header line is checked for
    arity only.  @raise Value.Type_error on a malformed cell. *)

val of_csv_file : Schema.t -> string -> Relation.t
