type t = { schema : Schema.t; rows : Tuple.t array }

let check_row schema (row : Tuple.t) =
  if Array.length row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation: row arity %d does not match schema arity %d"
         (Array.length row) (Schema.arity schema));
  Array.iteri
    (fun i v ->
      let a = Schema.attr_at schema i in
      if not (Value.conforms v a.Schema.ty) then
        invalid_arg
          (Printf.sprintf "Relation: value %s does not conform to %s:%s"
             (Value.to_string v) (Schema.qualified_name a)
             (Value.ty_to_string a.Schema.ty)))
    row

let create ?(check = true) schema rows =
  if check then Array.iter (check_row schema) rows;
  { schema; rows }

let of_list ?check schema rows = create ?check schema (Array.of_list rows)

let empty schema = { schema; rows = [||] }

let schema r = r.schema

let rows r = r.rows

let cardinality r = Array.length r.rows

let is_empty r = cardinality r = 0

let row r i = r.rows.(i)

let iter f r = Array.iter f r.rows

let iteri f r = Array.iteri f r.rows

let fold f init r = Array.fold_left f init r.rows

let filter p r = { r with rows = Array.of_seq (Seq.filter p (Array.to_seq r.rows)) }

let rename rel r = { r with schema = Schema.rename_rel rel r.schema }

let equal_as_multiset a b =
  Schema.equal_names a.schema b.schema
  && cardinality a = cardinality b
  &&
  let sa = Array.copy a.rows and sb = Array.copy b.rows in
  Array.sort Tuple.compare sa;
  Array.sort Tuple.compare sb;
  Array.for_all2 Tuple.equal sa sb

let pp ppf r =
  let n = Schema.arity r.schema in
  let headers =
    Array.init n (fun i -> Schema.qualified_name (Schema.attr_at r.schema i))
  in
  let widths = Array.map String.length headers in
  Array.iter
    (fun row ->
      Array.iteri
        (fun i v -> widths.(i) <- max widths.(i) (String.length (Value.to_string v)))
        row)
    r.rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line () =
    Format.fprintf ppf "+";
    Array.iter (fun w -> Format.fprintf ppf "%s+" (String.make (w + 2) '-')) widths;
    Format.fprintf ppf "@\n"
  in
  line ();
  Format.fprintf ppf "|";
  Array.iteri (fun i h -> Format.fprintf ppf " %s |" (pad i h)) headers;
  Format.fprintf ppf "@\n";
  line ();
  Array.iter
    (fun row ->
      Format.fprintf ppf "|";
      Array.iteri (fun i v -> Format.fprintf ppf " %s |" (pad i (Value.to_string v))) row;
      Format.fprintf ppf "@\n")
    r.rows;
  line ();
  Format.fprintf ppf "%d row%s@\n" (cardinality r) (if cardinality r = 1 then "" else "s")

let pp_brief ppf r =
  Format.fprintf ppf "%a: %d rows" Schema.pp r.schema (cardinality r)
