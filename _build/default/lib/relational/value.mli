(** SQL values and their three-valued comparison semantics.

    Values are dynamically typed at the cell level; the [ty] type is the
    static column type recorded in schemas.  [Null] inhabits every column
    type.  Integers and floats are mutually comparable (numeric
    promotion); all other cross-type comparisons raise {!Type_error}. *)

type ty = Tint | Tfloat | Tstring | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)

val ty_of : t -> ty option
(** [None] for [Null]. *)

val ty_to_string : ty -> string

val pp_ty : Format.formatter -> ty -> unit

val equal_ty : ty -> ty -> bool

val conforms : t -> ty -> bool
(** Does the value inhabit the column type?  [Null] conforms to all. *)

val is_null : t -> bool

(** {1 Grouping semantics}

    Structural equality/ordering/hash in which [Null = Null]; used for
    GROUP BY keys, DISTINCT, set operations and index keys — mirroring
    SQL's "nulls group together" rule.  Distinct from the 3VL comparison
    below. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: [Null] sorts first; numeric values compare numerically
    across [Int]/[Float]. *)

val hash : t -> int

(** {1 SQL comparison semantics (3VL)} *)

val cmp3 : t -> t -> int option
(** [cmp3 a b] is [None] when either side is [Null] (comparison is
    unknown), otherwise [Some c] with [c] negative/zero/positive.
    @raise Type_error on incomparable types. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division by zero yields [Null] (documented engine-wide choice that
    keeps randomly generated queries total). *)

val modulo : t -> t -> t
val neg : t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_csv_string : t -> string

val of_csv_string : ty -> string -> t
(** Parse a CSV cell given the column type; the empty string is [Null].
    @raise Type_error on malformed input. *)
