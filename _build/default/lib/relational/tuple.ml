type t = Value.t array

let empty : t = [||]

let concat = Array.append

let project (t : t) idxs = Array.map (fun i -> t.(i)) idxs

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let hash (t : t) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list t)
