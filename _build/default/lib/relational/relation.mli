(** Multiset relations: a schema plus an array of rows.

    Relations follow SQL bag semantics — duplicates are preserved unless
    an explicit DISTINCT/set operation removes them. *)

type t

val create : ?check:bool -> Schema.t -> Tuple.t array -> t
(** [create schema rows].  With [check] (default [true]) every row is
    verified to have the right arity and cell types.
    @raise Invalid_argument on a malformed row. *)

val of_list : ?check:bool -> Schema.t -> Tuple.t list -> t

val empty : Schema.t -> t

val schema : t -> Schema.t

val rows : t -> Tuple.t array
(** The underlying row array; treat as read-only. *)

val cardinality : t -> int

val is_empty : t -> bool

val row : t -> int -> Tuple.t

val iter : (Tuple.t -> unit) -> t -> unit

val iteri : (int -> Tuple.t -> unit) -> t -> unit

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val filter : (Tuple.t -> bool) -> t -> t

val rename : string -> t -> t
(** Alias the relation: requalify every attribute. *)

val equal_as_multiset : t -> t -> bool
(** Same bare-name schema (positionally) and same rows as a multiset.
    Used pervasively by the test suites to compare engines. *)

val pp : Format.formatter -> t -> unit
(** Aligned ASCII table. *)

val pp_brief : Format.formatter -> t -> unit
(** Cardinality and schema only. *)
