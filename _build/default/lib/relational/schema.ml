type attr = { rel : string; name : string; ty : Value.ty }

type t = attr array

exception Unknown_attribute of string

exception Ambiguous_attribute of string

let attr ?(rel = "") name ty = { rel; name; ty }

let qualified_name a = if a.rel = "" then a.name else a.rel ^ "." ^ a.name

let of_list attrs =
  let s = Array.of_list attrs in
  Array.iteri
    (fun i a ->
      for j = i + 1 to Array.length s - 1 do
        if s.(j).rel = a.rel && s.(j).name = a.name then
          invalid_arg ("Schema.of_list: duplicate attribute " ^ qualified_name a)
      done)
    s;
  s

let to_list = Array.to_list

let arity = Array.length

let attr_at (s : t) i = s.(i)

let find_opt (s : t) ?rel name =
  let matches a =
    a.name = name && match rel with None -> true | Some r -> a.rel = r
  in
  let found = ref None in
  Array.iteri
    (fun i a ->
      if matches a then
        match !found with
        | None -> found := Some i
        | Some _ -> raise (Ambiguous_attribute name))
    s;
  !found

let find s ?rel name =
  match find_opt s ?rel name with
  | Some i -> i
  | None ->
    let shown = match rel with None -> name | Some r -> r ^ "." ^ name in
    raise (Unknown_attribute shown)

let mem s ?rel name = find_opt s ?rel name <> None

let concat (a : t) (b : t) = Array.append a b

let rename_rel rel (s : t) = Array.map (fun a -> { a with rel }) s

let project (s : t) idxs = Array.map (fun i -> s.(i)) idxs

let rels (s : t) =
  Array.fold_left (fun acc a -> if List.mem a.rel acc then acc else a.rel :: acc) [] s
  |> List.rev

let fresh_name (s : t) base =
  let clashes name = Array.exists (fun a -> a.name = name) s in
  if not (clashes base) then base
  else
    let rec loop i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if clashes candidate then loop (i + 1) else candidate
    in
    loop 2

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.rel = y.rel && x.name = y.name && Value.equal_ty x.ty y.ty) a b

let equal_names (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.name = y.name && Value.equal_ty x.ty y.ty) a b

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%a" (qualified_name a) Value.pp_ty a.ty))
    (to_list s)
