(** Relation schemas: ordered lists of qualified, typed attributes.

    Attributes carry a relation qualifier ([rel]), which is the alias of
    the relation occurrence they stem from.  Lookups may be qualified
    ([H.StartInterval]) or bare ([StartInterval]); a bare lookup that
    matches several attributes is ambiguous and raises. *)

type attr = { rel : string; name : string; ty : Value.ty }

type t = attr array

exception Unknown_attribute of string

exception Ambiguous_attribute of string

val attr : ?rel:string -> string -> Value.ty -> attr
(** [attr ?rel name ty]; [rel] defaults to [""] (unqualified). *)

val of_list : attr list -> t
(** @raise Invalid_argument if two attributes share qualifier and name. *)

val to_list : t -> attr list

val arity : t -> int

val attr_at : t -> int -> attr

val qualified_name : attr -> string
(** ["rel.name"] or just ["name"] when unqualified. *)

val find : t -> ?rel:string -> string -> int
(** Position of the attribute.
    @raise Unknown_attribute when absent.
    @raise Ambiguous_attribute when a bare name matches several. *)

val find_opt : t -> ?rel:string -> string -> int option
(** [None] when absent; still raises {!Ambiguous_attribute}. *)

val mem : t -> ?rel:string -> string -> bool

val concat : t -> t -> t
(** Positional concatenation.  Duplicate qualified names are allowed here
    (they arise transiently); lookups on the duplicate become ambiguous. *)

val rename_rel : string -> t -> t
(** Set the qualifier of every attribute (aliasing a relation). *)

val project : t -> int array -> t

val rels : t -> string list
(** Distinct qualifiers, in first-appearance order. *)

val fresh_name : t -> string -> string
(** [fresh_name s base] is [base], or [base_2], [base_3], ... — the first
    candidate whose bare name does not clash with any attribute of [s]. *)

val equal : t -> t -> bool

val equal_names : t -> t -> bool
(** Positional equality of bare names and types, ignoring qualifiers. *)

val pp : Format.formatter -> t -> unit
