type t = True | False | Unknown

let of_bool b = if b then True else False

let to_bool = function True -> true | False | Unknown -> false

let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, (True | Unknown) | True, Unknown -> Unknown

let or_ a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, (False | Unknown) | False, Unknown -> Unknown

let ( &&& ) = and_

let ( ||| ) = or_

let equal (a : t) (b : t) = a = b

let to_string = function True -> "true" | False -> "false" | Unknown -> "unknown"

let pp ppf b = Format.pp_print_string ppf (to_string b)
