(** Tuples: positional arrays of values, interpreted through a schema. *)

type t = Value.t array

val empty : t

val concat : t -> t -> t

val project : t -> int array -> t

val equal : t -> t -> bool
(** Grouping equality (NULLs compare equal), positionwise. *)

val compare : t -> t -> int
(** Lexicographic extension of {!Value.compare}. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
