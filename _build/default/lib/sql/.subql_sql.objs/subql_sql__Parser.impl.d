lib/sql/parser.ml: Aggregate Array Expr Format Lexer List Ops Option Printf Relation Schema String Subql_nested Subql_relational
