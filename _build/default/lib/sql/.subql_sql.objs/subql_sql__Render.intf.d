lib/sql/render.mli: Subql_nested Subql_relational
