lib/sql/parser.mli: Subql_nested Subql_relational
