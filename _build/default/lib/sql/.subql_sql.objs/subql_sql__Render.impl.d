lib/sql/render.ml: Aggregate Expr Format List Printf String Subql_nested Subql_relational Value
