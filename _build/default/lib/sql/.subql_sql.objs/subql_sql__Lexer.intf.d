lib/sql/lexer.mli:
