(** Rendering nested queries back to the SQL subset.

    [query_to_sql] produces text that {!Parser.parse} accepts and that
    evaluates to the same result — the round-trip is property-tested
    against randomly generated queries.  Only shapes expressible in the
    dialect are supported: bases must be tables, aliased tables, or
    products of those (selections/projections inside a base have no FROM
    syntax here). *)

exception Unrepresentable of string

val expr_to_sql : Subql_relational.Expr.t -> string
(** @raise Unrepresentable on internal-only forms ([IS TRUE],
    null-safe equality). *)

val pred_to_sql : Subql_nested.Nested_ast.pred -> string

val query_to_sql : Subql_nested.Nested_ast.query -> string
