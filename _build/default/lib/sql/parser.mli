(** Recursive-descent parser for the SQL subset, lowering directly to the
    nested query algebra.

    Supported shape (one relation per FROM clause, arbitrary subquery
    nesting in WHERE):

    {v
    SELECT [DISTINCT] * | item, ...
    FROM table [AS] alias
    [WHERE predicate]

    predicate := ... AND/OR/NOT ..., comparisons over arithmetic
                 expressions, e IS [NOT] NULL,
                 EXISTS (subquery), e [NOT] IN (subquery),
                 e op ANY|SOME|ALL (subquery), e op (subquery)
    subquery  := SELECT star | col | agg(col) | count(star)
                 FROM table [AS] alias [WHERE predicate]
    v}

    predicates may also use [e \[NOT\] BETWEEN lo AND hi], and the outer
    query accepts aggregate select items with
    [GROUP BY col, ... \[HAVING pred\]] (HAVING may use aggregates but
    not subqueries), [ORDER BY col \[ASC|DESC\], ...] and [LIMIT n].

    Outer DISTINCT / ORDER BY / LIMIT are reported in the returned
    statement (the nested algebra itself has no post-processing); apply
    them to the evaluated result with {!apply_post}. *)

type grouped = {
  keys : (string option * string) list;  (** GROUP BY columns; [] = whole-relation aggregation *)
  aggs : Subql_relational.Aggregate.spec list;
      (** every aggregate to compute (select-list and HAVING) *)
  having : Subql_relational.Expr.t option;
      (** over the key columns and aggregate result columns *)
  out : (Subql_relational.Expr.t * string) list;  (** the final projection *)
}

type statement = {
  query : Subql_nested.Nested_ast.query;
  distinct : bool;
  grouped : grouped option;
      (** present when the statement aggregates; [query.q_select] is then
          [Select_all] so engines return the raw qualifying rows and
          {!apply_grouping} does the rest *)
  order_by : ((string option * string) * [ `Asc | `Desc ]) list;
  limit : int option;
}

exception Parse_error of string * int
(** Message and character offset into the input. *)

val parse : string -> statement

val apply_grouping :
  statement -> Subql_relational.Relation.t -> Subql_relational.Relation.t
(** For a grouped statement: apply GROUP BY / HAVING and the final
    projection to the qualifying rows returned by an engine.  Identity
    for ungrouped statements. *)

val apply_post :
  statement -> Subql_relational.Relation.t -> Subql_relational.Relation.t
(** Apply the statement's DISTINCT, ORDER BY and LIMIT clauses to an
    evaluated (and grouped) result. *)

val parse_exn_to_string : string -> string
(** Render a {!Parse_error} with a caret into the offending input line —
    convenience for CLI error reporting. *)
