(** Cost-based plan selection between the subquery evaluation
    strategies (the cost-based framework sketched in the paper's
    conclusion).

    For a nested query the planner enumerates the available complete
    plans — the optimized GMDJ translation, the classical semi-/anti-
    join unnesting when applicable, and the general outer-join
    expansion — estimates each with {!Cost}, and picks the cheapest.
    Every candidate computes the same result, so the choice only
    affects performance. *)

open Subql_relational

type candidate = {
  label : string;  (** "gmdj", "semijoin-unnest", or "outerjoin-unnest" *)
  plan : Algebra.t;
  estimate : Cost.estimate;
}

val candidates :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> candidate list
(** All available plans with their estimates, cheapest first.
    The unnesting candidates are produced lazily by callbacks registered
    with {!set_unnest_providers} (breaking the library cycle with
    [subql_unnest]); without providers only the GMDJ plan is offered. *)

val choose :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> candidate
(** The cheapest candidate. *)

val run :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> Relation.t
(** Choose and evaluate. *)

val set_unnest_providers :
  semijoin:(Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option) ->
  outerjoin:(Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option) ->
  unit
(** Called once by [Subql_unnest] at load time. *)
