(** Evaluation of extended-algebra expressions against a catalog.

    The configuration selects physical strategies without changing
    results: [`Hash] joins model the paper's "all important attributes
    were indexed" setting, [`Nested_loop] the index-free ablation; the
    GMDJ strategy selects between the definition-style reference
    evaluator, the plain single scan, and the hash-partitioned single
    scan. *)

open Subql_relational
open Subql_gmdj

type config = {
  join_strategy : Ops.join_strategy;
  gmdj_strategy : Gmdj.strategy;
}

val default_config : config
(** Hash joins, hash GMDJ. *)

val unindexed_config : config
(** Nested-loop joins, scan GMDJ. *)

val eval :
  ?config:config -> ?gmdj_stats:Gmdj.stats -> Catalog.t -> Algebra.t -> Relation.t
(** [gmdj_stats], when provided, accumulates over every [Md] /
    [Md_completed] node evaluated. *)

val schema : Catalog.t -> Algebra.t -> Schema.t

(** {1 Instrumented evaluation (EXPLAIN ANALYZE)} *)

type trace = {
  label : string;  (** operator rendering *)
  out_rows : int;
  self_seconds : float;  (** time in this operator, children excluded *)
  children : trace list;
}

val eval_traced :
  ?config:config -> Catalog.t -> Algebra.t -> Relation.t * trace

val pp_trace : Format.formatter -> trace -> unit
(** Indented tree with per-operator output cardinality and time. *)
