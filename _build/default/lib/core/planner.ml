open Subql_relational

type candidate = {
  label : string;
  plan : Algebra.t;
  estimate : Cost.estimate;
}

type provider = Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option

let semijoin_provider : provider ref = ref (fun _ _ -> None)

let outerjoin_provider : provider ref = ref (fun _ _ -> None)

let set_unnest_providers ~semijoin ~outerjoin =
  semijoin_provider := semijoin;
  outerjoin_provider := outerjoin

let candidates ?(config = Eval.default_config) catalog query =
  let stats = Cost.Stats.of_catalog catalog in
  let gmdj = Optimize.optimize (Transform.to_algebra query) in
  let maybe label plan =
    Option.map (fun p -> (label, p)) plan
  in
  let plans =
    List.filter_map Fun.id
      [
        Some ("gmdj", gmdj);
        maybe "semijoin-unnest" (!semijoin_provider catalog query);
        maybe "outerjoin-unnest" (!outerjoin_provider catalog query);
      ]
  in
  plans
  |> List.map (fun (label, plan) ->
         { label; plan; estimate = Cost.estimate stats ~config plan })
  |> List.sort (fun a b -> Float.compare a.estimate.Cost.cost b.estimate.Cost.cost)

let choose ?config catalog query =
  match candidates ?config catalog query with
  | best :: _ -> best
  | [] -> assert false (* the GMDJ plan is always present *)

let run ?config catalog query =
  let best = choose ?config catalog query in
  Eval.eval ?config catalog best.plan
