(** Algorithm SubqueryToGMDJ (Section 3, Theorems 3.1–3.5).

    Translates a nested query expression into an extended-algebra
    expression whose subqueries have been replaced by GMDJs:

    + the predicate is negation-normalized ({!Subql_nested.Normalize});
    + every subquery becomes an [Md] wrapped around the base-values
      expression of its scope, with blocks and selection condition per
      Table 1 (counting is the central mechanism);
    + subqueries {e within} subqueries extend the detail expression with
      nested [Md]s, folding their count-conditions into the enclosing θ
      (Theorem 3.2) — so conjunctive {e and} disjunctive combinations
      work uniformly;
    + non-neighboring correlation predicates are legalized by pushing a
      distinct projection of the referenced outer relation down into the
      offending scope's base-values expression and chaining null-safe
      equality conditions back up (Theorems 3.3/3.4 — the only place
      joins/products enter the translation).

    The result is a regular algebraic expression: no nesting remains.

    Scope limitation: aggregate {e arguments} (the [y] of [f(y)]) may
    reference the subquery's own relation and the immediately enclosing
    scope; non-neighboring references are supported in correlation
    predicates and comparison operands, where the paper defines them. *)

open Subql_relational

exception Unsupported of string

val base_to_algebra : Subql_nested.Nested_ast.base -> Algebra.t
(** Translate a subquery-free relation expression. *)

val to_algebra : Subql_nested.Nested_ast.query -> Algebra.t
(** The full translation, including the final selection and projection.
    The produced plan is unoptimized; see {!Optimize}.
    @raise Unsupported on a correlation the algorithm cannot place
    (e.g. a reference to an alias that is not in scope). *)

val where_condition : Subql_nested.Nested_ast.query -> Algebra.t * Expr.t
(** Expose the pre-selection pieces: the MD-wrapped base expression and
    the count-based condition replacing the WHERE clause.  [to_algebra]
    is [Select] of these plus the final projection. *)
