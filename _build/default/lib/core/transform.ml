open Subql_relational
open Subql_gmdj
module N = Subql_nested.Nested_ast
module Normalize = Subql_nested.Normalize

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let rec base_to_algebra = function
  | N.Btable t -> Algebra.Table t
  | N.Bselect (e, b) -> Algebra.Select (e, base_to_algebra b)
  | N.Bproject { cols; distinct; input } ->
    Algebra.Project_cols
      { cols = List.map (fun c -> (None, c)) cols; distinct; input = base_to_algebra input }
  | N.Bproduct (a, b) -> Algebra.Product (base_to_algebra a, base_to_algebra b)
  | N.Balias (a, b) -> Algebra.Rename (a, base_to_algebra b)

type env = { mutable counter : int }

let gensym env prefix =
  env.counter <- env.counter + 1;
  Printf.sprintf "%s#%d" prefix env.counter

(* A pending push-down (Thms 3.3/3.4): the columns [cols] of the outer
   relation occurrence [orig] have been embedded — distinct-projected and
   requalified as [pushed] — into some descendant base-values expression.
   The level that owns [orig] closes the loop by conjoining null-safe
   equalities between [orig] and [pushed] into its GMDJ condition. *)
type push = { orig : string; pushed : string; cols : string list }

let dedup_strings l =
  List.fold_left (fun acc c -> if List.mem c acc then acc else acc @ [ c ]) [] l

let cols_of_alias alias exprs =
  List.concat_map Expr.attrs exprs
  |> List.filter_map (fun (r, n) -> if r = Some alias then Some n else None)
  |> dedup_strings

let match_conds ~left_alias ~right_alias cols =
  List.map
    (fun c ->
      Expr.Null_safe_eq (Expr.attr ~rel:left_alias c, Expr.attr ~rel:right_alias c))
    cols

(* Each scope level may bind several aliases (a multi-relation FROM). *)
let level_source ~scope orig =
  List.find_map
    (fun (aliases, src) -> if List.mem orig aliases then Some src else None)
    scope

let pushed_rel ~scope ~orig ~pushed_alias ~cols =
  match level_source ~scope orig with
  | None -> unsupported "reference to alias %s which is not in scope" orig
  | Some src ->
    Algebra.Rename
      ( pushed_alias,
        Algebra.Project_cols
          { cols = List.map (fun c -> (Some orig, c)) cols; distinct = true; input = src } )

(* [transform_where env ~scope ~stack p] eliminates the subqueries of [p].
   [scope] lists the enclosing relation occurrences (alias and source
   algebra), outermost first; the last entry is the scope that owns [p].
   [stack] holds that scope's base-values expression and is wrapped with
   one GMDJ per subquery.  Returns the condition replacing [p] (over the
   final [stack] schema plus, for correlated parts, enclosing aliases)
   and the pushes that must be resolved further up. *)
let rec transform_where env ~scope ~stack (p : N.pred) : Expr.t * push list =
  match p with
  | N.Ptrue -> (Expr.bool true, [])
  | N.Atom e -> (e, [])
  | N.Pand (a, b) ->
    let ea, pa = transform_where env ~scope ~stack a in
    let eb, pb = transform_where env ~scope ~stack b in
    (Expr.and_ ea eb, pa @ pb)
  | N.Por (a, b) ->
    let ea, pa = transform_where env ~scope ~stack a in
    let eb, pb = transform_where env ~scope ~stack b in
    (Expr.or_ ea eb, pa @ pb)
  | N.Pnot _ -> unsupported "predicate is not negation-normalized"
  | N.Sub s -> transform_sub env ~scope ~stack s

and transform_sub env ~scope ~stack (s : N.sub) : Expr.t * push list =
  let parent_aliases =
    match List.rev scope with (aliases, _) :: _ -> aliases | [] -> assert false
  in
  let source_alg = Algebra.Rename (s.N.s_alias, base_to_algebra s.N.source) in
  let child_scope = scope @ [ ([ s.N.s_alias ], source_alg) ] in
  let child_stack = ref source_alg in
  let theta_w, child_pushes =
    transform_where env ~scope:child_scope ~stack:child_stack s.N.s_where
  in
  (* Resolve pushes addressed to this scope; chain the others through our
     own base-values expression (Thm 3.4: one extra join per level). *)
  let theta_w = ref theta_w in
  let propagated = ref [] in
  List.iter
    (fun p ->
      if List.mem p.orig parent_aliases then
        theta_w :=
          Expr.conjoin
            (!theta_w :: match_conds ~left_alias:p.orig ~right_alias:p.pushed p.cols)
      else begin
        let chained = gensym env p.orig in
        stack :=
          Algebra.Product
            (pushed_rel ~scope ~orig:p.orig ~pushed_alias:chained ~cols:p.cols, !stack);
        theta_w :=
          Expr.conjoin
            (!theta_w :: match_conds ~left_alias:chained ~right_alias:p.pushed p.cols);
        propagated := { p with pushed = chained } :: !propagated
      end)
    child_pushes;
  let theta_w = !theta_w in
  (* Table 1: blocks and count-based selection condition per subquery kind. *)
  let local col = Expr.attr ~rel:s.N.s_alias col in
  let blocks, cond =
    match s.N.kind with
    | N.Exists ->
      let c = gensym env "cnt" in
      ([ Gmdj.block [ Aggregate.count_star c ] theta_w ], Expr.gt (Expr.attr c) (Expr.int 0))
    | N.Not_exists ->
      let c = gensym env "cnt" in
      ([ Gmdj.block [ Aggregate.count_star c ] theta_w ], Expr.eq (Expr.attr c) (Expr.int 0))
    | N.Quant (lhs, op, N.Qsome, col) ->
      let c = gensym env "cnt" in
      let theta = Expr.and_ theta_w (Expr.cmp op lhs (local col)) in
      ([ Gmdj.block [ Aggregate.count_star c ] theta ], Expr.gt (Expr.attr c) (Expr.int 0))
    | N.Quant (lhs, op, N.Qall, col) ->
      let c1 = gensym env "cnt" and c2 = gensym env "cnt" in
      let theta1 = Expr.and_ theta_w (Expr.cmp op lhs (local col)) in
      ( [
          Gmdj.block [ Aggregate.count_star c1 ] theta1;
          Gmdj.block [ Aggregate.count_star c2 ] theta_w;
        ],
        Expr.eq (Expr.attr c1) (Expr.attr c2) )
    | N.Cmp_scalar (lhs, op, col) ->
      let c = gensym env "cnt" in
      let theta = Expr.and_ theta_w (Expr.cmp op lhs (local col)) in
      ([ Gmdj.block [ Aggregate.count_star c ] theta ], Expr.eq (Expr.attr c) (Expr.int 1))
    | N.Cmp_agg (lhs, op, func) ->
      let a = gensym env "agg" in
      ( [ Gmdj.block [ { Aggregate.func; name = a } ] theta_w ],
        Expr.cmp op lhs (Expr.attr a) )
    | N.In_ _ | N.Not_in _ ->
      unsupported "IN/NOT IN must be desugared (run Normalize first)"
  in
  (* Legalize this GMDJ's own non-neighboring references: any enclosing
     alias other than the immediate parent appearing in a block condition
     is replaced by a pushed-down copy embedded in our base-values
     expression (Thm 3.3), to be matched one level up. *)
  let scope_aliases = List.concat_map fst scope in
  let thetas = List.map (fun b -> b.Gmdj.theta) blocks in
  let bad =
    List.concat_map Expr.qualifiers thetas
    |> dedup_strings
    |> List.filter (fun a -> (not (List.mem a parent_aliases)) && List.mem a scope_aliases)
  in
  let blocks = ref blocks in
  List.iter
    (fun orig ->
      let pushed_alias = gensym env orig in
      let cols = cols_of_alias orig thetas in
      stack :=
        Algebra.Product (pushed_rel ~scope ~orig ~pushed_alias ~cols, !stack);
      blocks :=
        List.map
          (fun b ->
            {
              b with
              Gmdj.theta = Expr.rewrite_qualifier ~from_rel:orig ~to_rel:pushed_alias b.Gmdj.theta;
            })
          !blocks;
      propagated := { orig; pushed = pushed_alias; cols } :: !propagated)
    bad;
  stack := Algebra.Md { base = !stack; detail = !child_stack; blocks = !blocks };
  (cond, List.rev !propagated)

let where_condition q =
  let q = Normalize.query q in
  let env = { counter = 0 } in
  let base_alg =
    if q.N.q_alias = "" then base_to_algebra q.N.q_base
    else Algebra.Rename (q.N.q_alias, base_to_algebra q.N.q_base)
  in
  let stack = ref base_alg in
  let cond, pushes =
    transform_where env ~scope:[ (N.scope_aliases q, base_alg) ] ~stack q.N.q_where
  in
  (match pushes with
  | [] -> ()
  | p :: _ -> unsupported "unresolved push-down for alias %s" p.orig);
  (!stack, cond)

let to_algebra q =
  let stack_alg, cond = where_condition q in
  let selected = Algebra.Select (cond, stack_alg) in
  match q.N.q_select with
  | N.Select_all -> Algebra.Project_rel (N.scope_aliases q, selected)
  | N.Select_cols cols -> Algebra.Project_cols { cols; distinct = false; input = selected }
  | N.Select_exprs exprs -> Algebra.Project (exprs, selected)
