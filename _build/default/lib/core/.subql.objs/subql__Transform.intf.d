lib/core/transform.mli: Algebra Expr Subql_nested Subql_relational
