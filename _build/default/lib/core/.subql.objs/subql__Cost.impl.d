lib/core/cost.ml: Algebra Array Catalog Eval Expr Float Gmdj Hashtbl List Relation Schema Subql_gmdj Subql_relational Value
