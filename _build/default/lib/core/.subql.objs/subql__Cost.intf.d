lib/core/cost.mli: Algebra Catalog Eval Expr Subql_relational
