lib/core/planner.mli: Algebra Catalog Cost Eval Relation Subql_nested Subql_relational
