lib/core/planner.ml: Algebra Catalog Cost Eval Float Fun List Optimize Option Subql_nested Subql_relational Transform
