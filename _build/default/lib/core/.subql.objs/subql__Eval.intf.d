lib/core/eval.mli: Algebra Catalog Format Gmdj Ops Relation Schema Subql_gmdj Subql_relational
