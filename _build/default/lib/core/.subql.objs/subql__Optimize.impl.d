lib/core/optimize.ml: Aggregate Algebra Expr Gmdj List Option String Subql_gmdj Subql_relational Value
