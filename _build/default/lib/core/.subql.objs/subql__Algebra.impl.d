lib/core/algebra.ml: Aggregate Array Expr Format Gmdj List Schema String Subql_gmdj Subql_relational Value
