lib/core/eval.ml: Algebra Catalog Expr Format Gmdj List Ops Printf Relation Schema String Subql_gmdj Subql_relational Unix
