lib/core/algebra.mli: Aggregate Expr Format Gmdj Schema Subql_gmdj Subql_relational
