lib/core/optimize.mli: Algebra
