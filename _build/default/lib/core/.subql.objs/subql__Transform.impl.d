lib/core/transform.ml: Aggregate Algebra Expr Format Gmdj List Printf Subql_gmdj Subql_nested Subql_relational
