(** Tuple-iteration evaluation of nested queries — the "native" baseline.

    For every base row the subqueries are re-evaluated over their source
    relations, exactly as a DBMS without unnesting would.  Two variants
    model the behaviours observed in the paper's experiments:

    - [Plain] — a pure nested loop: the full inner relation is scanned
      for every outer row, with no early termination.
    - [Smart] — the vendor tricks the paper attributes to its target
      DBMS: uncorrelated conjuncts of the inner WHERE are hoisted and
      applied once ("reusing invariants"), an index is built over the
      inner relation on equi-correlation attributes when one exists, and
      EXISTS / quantifier evaluation terminates early (the "smart nested
      loop" that discards a tuple at the first ALL violation).

    Both variants implement the same dialect semantics as the other
    engines (the predicate is negation-normalized first). *)

open Subql_relational

type mode = Plain | Smart

type stats = {
  mutable subquery_invocations : int;  (** inner-loop entries *)
  mutable inner_rows_examined : int;  (** candidate inner rows touched *)
}

val fresh_stats : unit -> stats

val eval_base : Catalog.t -> Nested_ast.base -> Relation.t
(** Evaluate a subquery-free relation expression (unaliased). *)

val eval : ?mode:mode -> ?stats:stats -> Catalog.t -> Nested_ast.query -> Relation.t
