open Subql_relational

type quant = Qsome | Qall

type base =
  | Btable of string
  | Bselect of Expr.t * base
  | Bproject of { cols : string list; distinct : bool; input : base }
  | Bproduct of base * base
  | Balias of string * base

type sub_kind =
  | Exists
  | Not_exists
  | Cmp_scalar of Expr.t * Expr.cmp * string
  | Cmp_agg of Expr.t * Expr.cmp * Aggregate.func
  | Quant of Expr.t * Expr.cmp * quant * string
  | In_ of Expr.t * string
  | Not_in of Expr.t * string

type pred =
  | Ptrue
  | Atom of Expr.t
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred
  | Sub of sub

and sub = { kind : sub_kind; source : base; s_alias : string; s_where : pred }

type select =
  | Select_all
  | Select_cols of (string option * string) list
  | Select_exprs of (Expr.t * string) list

type query = { q_base : base; q_alias : string; q_where : pred; q_select : select }

let table name = Btable name

let query ?(select = Select_all) ~base ~alias where =
  { q_base = base; q_alias = alias; q_where = where; q_select = select }

let mk_sub kind ?(where = Ptrue) source s_alias =
  Sub { kind; source; s_alias; s_where = where }

let exists ?where source alias = mk_sub Exists ?where source alias

let not_exists ?where source alias = mk_sub Not_exists ?where source alias

let some_ lhs op ?where source alias ~col = mk_sub (Quant (lhs, op, Qsome, col)) ?where source alias

let all_ lhs op ?where source alias ~col = mk_sub (Quant (lhs, op, Qall, col)) ?where source alias

let in_ lhs ?where source alias ~col = mk_sub (In_ (lhs, col)) ?where source alias

let not_in lhs ?where source alias ~col = mk_sub (Not_in (lhs, col)) ?where source alias

let scalar_cmp lhs op ?where source alias ~col =
  mk_sub (Cmp_scalar (lhs, op, col)) ?where source alias

let agg_cmp lhs op func ?where source alias = mk_sub (Cmp_agg (lhs, op, func)) ?where source alias

let atom e = Atom e

let pand a b = Pand (a, b)

let por a b = Por (a, b)

let pnot a = Pnot a

let conjoin_preds = function
  | [] -> Ptrue
  | p :: rest -> List.fold_left pand p rest

let rec fold_subs f acc = function
  | Ptrue | Atom _ -> acc
  | Pand (a, b) | Por (a, b) -> fold_subs f (fold_subs f acc a) b
  | Pnot a -> fold_subs f acc a
  | Sub s -> f acc s

let rec base_aliases = function
  | Btable t -> [ t ]
  | Bselect (_, b) | Bproject { input = b; _ } -> base_aliases b
  | Bproduct (a, b) -> base_aliases a @ base_aliases b
  | Balias (a, _) -> [ a ]

let scope_aliases q = if q.q_alias = "" then base_aliases q.q_base else [ q.q_alias ]

let rec pp_base ppf = function
  | Btable t -> Format.pp_print_string ppf t
  | Bselect (e, b) -> Format.fprintf ppf "sigma[%a](%a)" Expr.pp e pp_base b
  | Bproject { cols; distinct; input } ->
    Format.fprintf ppf "pi%s[%s](%a)"
      (if distinct then "-distinct" else "")
      (String.concat ", " cols) pp_base input
  | Bproduct (a, b) -> Format.fprintf ppf "(%a x %a)" pp_base a pp_base b
  | Balias (a, b) -> Format.fprintf ppf "(%a -> %s)" pp_base b a

let quant_to_string = function Qsome -> "some" | Qall -> "all"

let rec pp_pred ppf = function
  | Ptrue -> Format.pp_print_string ppf "true"
  | Atom e -> Expr.pp ppf e
  | Pand (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Por (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Pnot a -> Format.fprintf ppf "(NOT %a)" pp_pred a
  | Sub s -> pp_sub ppf s

and pp_sub ppf s =
  let body ppf () =
    Format.fprintf ppf "%a -> %s%s" pp_base s.source s.s_alias
      (match s.s_where with
      | Ptrue -> ""
      | w -> Format.asprintf " WHERE %a" pp_pred w)
  in
  match s.kind with
  | Exists -> Format.fprintf ppf "EXISTS(%a)" body ()
  | Not_exists -> Format.fprintf ppf "NOT EXISTS(%a)" body ()
  | Cmp_scalar (lhs, op, col) ->
    Format.fprintf ppf "(%a %s (SELECT %s FROM %a))" Expr.pp lhs (Expr.cmp_to_string op) col
      body ()
  | Cmp_agg (lhs, op, func) ->
    Format.fprintf ppf "(%a %s (SELECT %s FROM %a))" Expr.pp lhs (Expr.cmp_to_string op)
      (Aggregate.func_to_string func) body ()
  | Quant (lhs, op, q, col) ->
    Format.fprintf ppf "(%a %s %s (SELECT %s FROM %a))" Expr.pp lhs (Expr.cmp_to_string op)
      (String.uppercase_ascii (quant_to_string q))
      col body ()
  | In_ (lhs, col) ->
    Format.fprintf ppf "(%a IN (SELECT %s FROM %a))" Expr.pp lhs col body ()
  | Not_in (lhs, col) ->
    Format.fprintf ppf "(%a NOT IN (SELECT %s FROM %a))" Expr.pp lhs col body ()

let pp_query ppf q =
  let pp_select ppf = function
    | Select_all -> Format.pp_print_string ppf "*"
    | Select_cols cols ->
      Format.pp_print_string ppf
        (String.concat ", "
           (List.map (function None, n -> n | Some r, n -> r ^ "." ^ n) cols))
    | Select_exprs exprs ->
      Format.pp_print_string ppf
        (String.concat ", "
           (List.map (fun (e, n) -> Format.asprintf "%a AS %s" Expr.pp e n) exprs))
  in
  Format.fprintf ppf "SELECT %a FROM %a -> %s WHERE %a" pp_select q.q_select pp_base q.q_base
    q.q_alias pp_pred q.q_where
