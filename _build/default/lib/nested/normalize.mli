(** Negation normalization (first phase of Algorithm SubqueryToGMDJ).

    Pushes negations down to atomic predicates with De Morgan's laws and
    eliminates negations in front of subqueries with the paper's flip
    rules:

    - [¬(t φ S)       ⇒ t φ̄ S]
    - [¬(t φ_some S)  ⇒ t φ̄_all S]
    - [¬(t φ_all S)   ⇒ t φ̄_some S]
    - [¬∃S ⇒ ∄S] and [¬∄S ⇒ ∃S]

    IN / NOT IN are desugared to [=_some] / [≠_all] on the way.  The
    result contains no [Pnot] and no [In_]/[Not_in] nodes, and every
    subquery body is normalized as well. *)

val pred : Nested_ast.pred -> Nested_ast.pred

val query : Nested_ast.query -> Nested_ast.query

val is_normalized : Nested_ast.pred -> bool
(** No [Pnot], [In_], or [Not_in] anywhere (including subquery bodies). *)
