lib/nested/nested_ast.ml: Aggregate Expr Format List String Subql_relational
