lib/nested/naive_eval.ml: Aggregate Array Bool3 Catalog Expr Index List Nested_ast Normalize Ops Relation Schema Subql_relational Tuple
