lib/nested/normalize.ml: Expr Nested_ast Subql_relational
