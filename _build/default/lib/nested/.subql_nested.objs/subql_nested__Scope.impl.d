lib/nested/scope.ml: Aggregate Expr List Nested_ast Subql_relational
