lib/nested/normalize.mli: Nested_ast
