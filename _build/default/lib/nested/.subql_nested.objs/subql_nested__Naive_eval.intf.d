lib/nested/naive_eval.mli: Catalog Nested_ast Relation Subql_relational
