lib/nested/nested_ast.mli: Aggregate Expr Format Subql_relational
