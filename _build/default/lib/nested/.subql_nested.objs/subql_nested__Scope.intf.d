lib/nested/scope.mli: Nested_ast Subql_relational
