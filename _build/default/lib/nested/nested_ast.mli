(** The nested query algebra of Section 2.1 (after Bækgaard & Mark).

    A query is [σ[W](B)] with a final projection; [W] may contain
    subquery predicates:

    - nested comparison selection          [σ(x φ S)B]
    - quantified nested comparison         [σ(x φ_some S)B], [σ(x φ_all S)B]
    - nested existential selection         [σ(∃S)B], [σ(∄S)B]
    - IN / NOT IN sugar                    [σ(x ∈ S)B ≡ x =_some S], etc.

    Subqueries range over a source relation and may be correlated with
    any enclosing scope through {e qualified} attribute references (the
    free references of the paper); unqualified references always resolve
    to the innermost scope.  Subquery predicates nest arbitrarily
    (linear nesting, Section 3.2).

    Semantics note: following the paper (Sec. 3.3), negation is defined
    by normal-form rewriting — De Morgan push-down plus the quantifier
    flip rules — and the subquery forms take the count-based meanings of
    Table 1.  Every engine in this repository (naive iteration, GMDJ,
    join unnesting) implements exactly these semantics, so results are
    directly comparable. *)

open Subql_relational

type quant = Qsome | Qall

(** Subquery-free relation expressions, used for query bases and
    subquery sources. *)
type base =
  | Btable of string  (** named catalog table *)
  | Bselect of Expr.t * base  (** plain (non-nested) selection *)
  | Bproject of { cols : string list; distinct : bool; input : base }
      (** projection onto bare column names *)
  | Bproduct of base * base
      (** cross product — multi-relation FROM clauses (join predicates
          live in the WHERE clause) *)
  | Balias of string * base  (** requalify all attributes *)

type sub_kind =
  | Exists
  | Not_exists
  | Cmp_scalar of Expr.t * Expr.cmp * string
      (** [lhs φ (SELECT col FROM ...)]: true iff exactly one matching
          row satisfies the comparison (Table 1, row 1). *)
  | Cmp_agg of Expr.t * Expr.cmp * Aggregate.func
      (** [lhs φ (SELECT f(y) FROM ...)]: 3VL comparison against the
          aggregate over the range (Table 1, row 2). *)
  | Quant of Expr.t * Expr.cmp * quant * string
      (** [lhs φ SOME/ALL (SELECT col FROM ...)] (Table 1, rows 3–4). *)
  | In_ of Expr.t * string
  | Not_in of Expr.t * string

type pred =
  | Ptrue
  | Atom of Expr.t
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred
  | Sub of sub

and sub = { kind : sub_kind; source : base; s_alias : string; s_where : pred }

type select =
  | Select_all
  | Select_cols of (string option * string) list
  | Select_exprs of (Expr.t * string) list

type query = { q_base : base; q_alias : string; q_where : pred; q_select : select }
(** [q_alias] names the base-values relation for correlation references.
    The empty string means "no outer rename": the base's own aliases
    (e.g. those introduced by {!Balias} under a {!Bproduct}) stay
    visible — this is how multi-relation FROM clauses are scoped. *)

(** {1 Constructors} *)

val table : string -> base

val query : ?select:select -> base:base -> alias:string -> pred -> query

val exists : ?where:pred -> base -> string -> pred

val not_exists : ?where:pred -> base -> string -> pred

val some_ : Expr.t -> Expr.cmp -> ?where:pred -> base -> string -> col:string -> pred

val all_ : Expr.t -> Expr.cmp -> ?where:pred -> base -> string -> col:string -> pred

val in_ : Expr.t -> ?where:pred -> base -> string -> col:string -> pred

val not_in : Expr.t -> ?where:pred -> base -> string -> col:string -> pred

val scalar_cmp : Expr.t -> Expr.cmp -> ?where:pred -> base -> string -> col:string -> pred

val agg_cmp : Expr.t -> Expr.cmp -> Aggregate.func -> ?where:pred -> base -> string -> pred

val atom : Expr.t -> pred

val pand : pred -> pred -> pred

val por : pred -> pred -> pred

val pnot : pred -> pred

val conjoin_preds : pred list -> pred

val scope_aliases : query -> string list
(** The aliases a subquery of this query may correlate against:
    [\[q_alias\]], or the base's own aliases when [q_alias] is empty. *)

val base_aliases : base -> string list

(** {1 Traversal} *)

val fold_subs : ('acc -> sub -> 'acc) -> 'acc -> pred -> 'acc
(** Fold over the top-level subqueries of a predicate (not recursing
    into their bodies). *)

val pp_pred : Format.formatter -> pred -> unit

val pp_query : Format.formatter -> query -> unit

val pp_base : Format.formatter -> base -> unit
