open Subql_relational
open Nested_ast

type mode = Plain | Smart

type stats = {
  mutable subquery_invocations : int;
  mutable inner_rows_examined : int;
}

let fresh_stats () = { subquery_invocations = 0; inner_rows_examined = 0 }

let rec eval_base catalog = function
  | Btable t -> Catalog.find catalog t
  | Bselect (p, b) -> Ops.select p (eval_base catalog b)
  | Bproject { cols; distinct; input } ->
    Ops.project_cols ~distinct (List.map (fun c -> (None, c)) cols) (eval_base catalog input)
  | Bproduct (a, b) -> Ops.product (eval_base catalog a) (eval_base catalog b)
  | Balias (a, b) -> Relation.rename a (eval_base catalog b)

let rec pred_depth = function
  | Ptrue | Atom _ -> 0
  | Pand (a, b) | Por (a, b) -> max (pred_depth a) (pred_depth b)
  | Pnot a -> pred_depth a
  | Sub s -> 1 + pred_depth s.s_where

(* Iteration plan over a subquery's source for a given outer context:
   [iterate stop_early on_row] visits the rows matching the (residual)
   inner predicate; [on_row] returns [true] to keep going, [false] to
   terminate early. *)
type iteration = { iterate : (Tuple.t -> bool) -> unit }

let bump stats field =
  match stats with
  | None -> ()
  | Some s -> (
    match field with
    | `Invocation -> s.subquery_invocations <- s.subquery_invocations + 1
    | `Row -> s.inner_rows_examined <- s.inner_rows_examined + 1)

(* Split the top-level conjunction of a predicate into atoms and the
   rest.  Used by Smart mode to identify hoistable and indexable
   conjuncts; anything under an Or stays opaque. *)
let rec top_conjuncts = function
  | Pand (a, b) -> top_conjuncts a @ top_conjuncts b
  | Ptrue -> []
  | p -> [ p ]

let rec compile_pred ~mode ~stats ~catalog (frames : Schema.t array) (ctx : Tuple.t array)
    (p : pred) : unit -> Bool3.t =
  match p with
  | Ptrue -> fun () -> Bool3.True
  | Atom e ->
    Expr.typecheck_bool frames e;
    let f = Expr.compile_frames frames e in
    fun () -> Expr.to_bool3 (f ctx)
  | Pand (a, b) ->
    let fa = compile_pred ~mode ~stats ~catalog frames ctx a in
    let fb = compile_pred ~mode ~stats ~catalog frames ctx b in
    fun () ->
      (match fa () with
      | Bool3.False -> Bool3.False
      | va -> Bool3.and_ va (fb ()))
  | Por (a, b) ->
    let fa = compile_pred ~mode ~stats ~catalog frames ctx a in
    let fb = compile_pred ~mode ~stats ~catalog frames ctx b in
    fun () ->
      (match fa () with
      | Bool3.True -> Bool3.True
      | va -> Bool3.or_ va (fb ()))
  | Pnot a ->
    let fa = compile_pred ~mode ~stats ~catalog frames ctx a in
    fun () -> Bool3.not_ (fa ())
  | Sub s -> compile_sub ~mode ~stats ~catalog frames ctx s

and compile_sub ~mode ~stats ~catalog frames ctx s =
  let d = Array.length frames in
  let source = Relation.rename s.s_alias (eval_base catalog s.source) in
  let sschema = Relation.schema source in
  let frames' = Array.append frames [| sschema |] in
  let iteration = compile_iteration ~mode ~stats ~catalog ~frames ~frames' ~ctx ~d ~source s in
  let early = match mode with Smart -> true | Plain -> false in
  match s.kind with
  | Exists | Not_exists ->
    let negate = s.kind = Not_exists in
    fun () ->
      bump stats `Invocation;
      let found = ref false in
      iteration.iterate (fun _row ->
          found := true;
          not early);
      Bool3.of_bool (if negate then not !found else !found)
  | Quant (lhs, op, q, col) ->
    Expr.typecheck_bool frames' (Expr.Cmp (op, lhs, Expr.attr ~rel:s.s_alias col));
    let lhs_f = Expr.compile_frames frames lhs in
    let col_i = Schema.find sschema ~rel:s.s_alias col in
    (match q with
    | Qsome ->
      fun () ->
        bump stats `Invocation;
        let lhs_v = lhs_f ctx in
        let found = ref false in
        iteration.iterate (fun row ->
            if Expr.is_true (Expr.apply_cmp op lhs_v row.(col_i)) then begin
              found := true;
              not early
            end
            else true);
        Bool3.of_bool !found
    | Qall ->
      fun () ->
        bump stats `Invocation;
        let lhs_v = lhs_f ctx in
        let violated = ref false in
        iteration.iterate (fun row ->
            if not (Expr.is_true (Expr.apply_cmp op lhs_v row.(col_i))) then begin
              violated := true;
              not early
            end
            else true);
        Bool3.of_bool (not !violated))
  | Cmp_scalar (lhs, op, col) ->
    Expr.typecheck_bool frames' (Expr.Cmp (op, lhs, Expr.attr ~rel:s.s_alias col));
    let lhs_f = Expr.compile_frames frames lhs in
    let col_i = Schema.find sschema ~rel:s.s_alias col in
    fun () ->
      bump stats `Invocation;
      let lhs_v = lhs_f ctx in
      let count = ref 0 in
      iteration.iterate (fun row ->
          if Expr.is_true (Expr.apply_cmp op lhs_v row.(col_i)) then incr count;
          (* Once two rows match the count can never be 1 again. *)
          not (early && !count >= 2));
      Bool3.of_bool (!count = 1)
  | Cmp_agg (lhs, op, func) ->
    let spec = { Aggregate.func; name = "agg" } in
    ignore (Aggregate.output_ty frames' spec);
    let lhs_f = Expr.compile_frames frames lhs in
    let compiled = Aggregate.compile frames' spec in
    fun () ->
      bump stats `Invocation;
      let acc = Aggregate.make compiled in
      iteration.iterate (fun row ->
          ctx.(d) <- row;
          Aggregate.step acc ctx;
          true);
      Expr.to_bool3 (Expr.apply_cmp op (lhs_f ctx) (Aggregate.value acc))
  | In_ _ | Not_in _ ->
    invalid_arg "Naive_eval: IN/NOT IN must be desugared (run Normalize first)"

(* Build the row iteration for a subquery: which inner rows to visit for
   the current outer context, applying the residual inner predicate. *)
and compile_iteration ~mode ~stats ~catalog ~frames ~frames' ~ctx ~d ~source s =
  match mode with
  | Plain ->
    let inner = compile_pred ~mode ~stats ~catalog frames' ctx s.s_where in
    let rows = Relation.rows source in
    {
      iterate =
        (fun on_row ->
          let n = Array.length rows in
          let continue = ref true in
          let i = ref 0 in
          while !continue && !i < n do
            let row = rows.(!i) in
            bump stats `Row;
            ctx.(d) <- row;
            if Bool3.to_bool (inner ()) then continue := on_row row;
            incr i
          done);
    }
  | Smart ->
    let sschema = Relation.schema source in
    (* 1. Hoist uncorrelated atoms: filter the source once. *)
    let conjs = top_conjuncts s.s_where in
    let hoistable, rest =
      List.partition
        (function Atom e -> Expr.refs_resolvable [| sschema |] e | _ -> false)
        conjs
    in
    let source =
      match hoistable with
      | [] -> source
      | atoms ->
        let es = List.map (function Atom e -> e | _ -> assert false) atoms in
        Ops.select (Expr.conjoin es) source
    in
    let rows = Relation.rows source in
    (* 2. Extract equi-correlation conjuncts: outer expression = local
       column.  They drive a hash index over the (filtered) source. *)
    let classify_equi = function
      | Atom (Expr.Cmp (Expr.Eq, a, b)) ->
        let local_col e =
          match e with
          | Expr.Attr (rel, name) -> Schema.find_opt sschema ?rel name
          | _ -> None
        in
        let outer_only e =
          Expr.refs_resolvable frames e && not (Expr.refs_resolvable [| sschema |] e)
        in
        (match local_col b, outer_only a with
        | Some col, true -> Some (a, col)
        | _ -> (
          match local_col a, outer_only b with
          | Some col, true -> Some (b, col)
          | _ -> None))
      | _ -> None
    in
    let equi, residual_preds =
      List.fold_left
        (fun (equi, res) conj ->
          match classify_equi conj with
          | Some pair -> (pair :: equi, res)
          | None -> (conj, res) |> fun (c, res) -> (equi, c :: res))
        ([], []) rest
    in
    let equi = List.rev equi and residual_preds = List.rev residual_preds in
    let residual =
      match residual_preds with
      | [] -> None
      | ps -> Some (compile_pred ~mode ~stats ~catalog frames' ctx (conjoin_preds ps))
    in
    let visit on_row row continue =
      bump stats `Row;
      ctx.(d) <- row;
      match residual with
      | None -> continue := on_row row
      | Some inner -> if Bool3.to_bool (inner ()) then continue := on_row row
    in
    (match equi with
    | [] ->
      {
        iterate =
          (fun on_row ->
            let n = Array.length rows in
            let continue = ref true in
            let i = ref 0 in
            while !continue && !i < n do
              visit on_row rows.(!i) continue;
              incr i
            done);
      }
    | _ ->
      let outer_fs = Array.of_list (List.map (fun (e, _) -> Expr.compile_frames frames e) equi) in
      let cols = Array.of_list (List.map snd equi) in
      let index = Index.build_rows rows cols in
      {
        iterate =
          (fun on_row ->
            let key = Array.map (fun f -> f ctx) outer_fs in
            let matches = Index.probe index key in
            let continue = ref true in
            List.iter
              (fun ri -> if !continue then visit on_row rows.(ri) continue)
              matches);
      })

let apply_select select rel =
  match select with
  | Select_all -> rel
  | Select_cols cols -> Ops.project_cols cols rel
  | Select_exprs exprs -> Ops.project exprs rel

let rename_base alias rel = if alias = "" then rel else Relation.rename alias rel

let eval ?(mode = Smart) ?stats catalog q =
  let where = Normalize.pred q.q_where in
  let base_rel = rename_base q.q_alias (eval_base catalog q.q_base) in
  let bschema = Relation.schema base_rel in
  let ctx = Array.make (pred_depth where + 1) Tuple.empty in
  let p = compile_pred ~mode ~stats ~catalog [| bschema |] ctx where in
  let kept =
    Relation.filter
      (fun row ->
        ctx.(0) <- row;
        Bool3.to_bool (p ()))
      base_rel
  in
  apply_select q.q_select kept
