open Subql_relational
open Nested_ast

let desugar_kind = function
  | In_ (lhs, col) -> Quant (lhs, Expr.Eq, Qsome, col)
  | Not_in (lhs, col) -> Quant (lhs, Expr.Ne, Qall, col)
  | (Exists | Not_exists | Cmp_scalar _ | Cmp_agg _ | Quant _) as k -> k

let rec negate_kind = function
  | Exists -> Not_exists
  | Not_exists -> Exists
  | Cmp_scalar (lhs, op, col) -> Cmp_scalar (lhs, Expr.negate_cmp op, col)
  | Cmp_agg (lhs, op, f) -> Cmp_agg (lhs, Expr.negate_cmp op, f)
  | Quant (lhs, op, Qsome, col) -> Quant (lhs, Expr.negate_cmp op, Qall, col)
  | Quant (lhs, op, Qall, col) -> Quant (lhs, Expr.negate_cmp op, Qsome, col)
  | (In_ _ | Not_in _) as k -> negate_kind (desugar_kind k)

(* [positive p] normalizes [p]; [negative p] normalizes [¬p]. *)
let rec positive = function
  | Ptrue -> Ptrue
  | Atom e -> Atom e
  | Pand (a, b) -> Pand (positive a, positive b)
  | Por (a, b) -> Por (positive a, positive b)
  | Pnot p -> negative p
  | Sub s -> Sub (normalize_sub s)

and negative = function
  | Ptrue -> Atom (Expr.bool false)
  | Atom e -> Atom (Expr.not_ e)
  | Pand (a, b) -> Por (negative a, negative b)
  | Por (a, b) -> Pand (negative a, negative b)
  | Pnot p -> positive p
  | Sub s -> Sub (normalize_sub { s with kind = negate_kind s.kind })

and normalize_sub s = { s with kind = desugar_kind s.kind; s_where = positive s.s_where }

let pred = positive

let query q = { q with q_where = positive q.q_where }

let rec is_normalized = function
  | Ptrue | Atom _ -> true
  | Pand (a, b) | Por (a, b) -> is_normalized a && is_normalized b
  | Pnot _ -> false
  | Sub { kind = In_ _ | Not_in _; _ } -> false
  | Sub { s_where; _ } -> is_normalized s_where
