(** Binary tuple serialization for the paged storage layer.

    Values encode as a tag byte plus payload (ints and floats as 8-byte
    little-endian, strings length-prefixed); a tuple is its values in
    sequence — the schema supplies the arity, so no per-tuple framing is
    needed beyond the page's tuple count. *)

open Subql_relational

val encode_value : Buffer.t -> Value.t -> unit

val decode_value : bytes -> pos:int ref -> Value.t
(** @raise Invalid_argument on a corrupt tag. *)

val encode_tuple : Buffer.t -> Tuple.t -> unit

val decode_tuple : bytes -> pos:int ref -> arity:int -> Tuple.t

val tuple_bytes : Tuple.t -> int
(** Encoded size, for page packing. *)
