lib/storage/heap_file.mli: Buffer_pool Relation Schema Subql_relational Tuple
