lib/storage/paged_gmdj.ml: Gmdj Heap_file List Relation Subql_gmdj Subql_relational
