lib/storage/codec.ml: Array Buffer Bytes Char Int64 Printf String Subql_relational Tuple Value
