lib/storage/codec.mli: Buffer Subql_relational Tuple Value
