lib/storage/heap_file.ml: Array Buffer Buffer_pool Bytes Codec Int32 Int64 Relation Schema Subql_relational Tuple Unix Vec
