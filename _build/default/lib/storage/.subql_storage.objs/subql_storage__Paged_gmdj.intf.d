lib/storage/paged_gmdj.mli: Buffer_pool Gmdj Heap_file Relation Subql_gmdj Subql_relational
