type frame = { bytes : bytes; mutable last_used : int }

type stats = {
  mutable page_reads : int;
  mutable hits : int;
  mutable evictions : int;
}

type t = {
  capacity : int;
  table : (string * int, frame) Hashtbl.t;
  mutable clock : int;
  stats : stats;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Buffer_pool.create: frames must be positive";
  {
    capacity = frames;
    table = Hashtbl.create (2 * frames);
    clock = 0;
    stats = { page_reads = 0; hits = 0; evictions = 0 };
  }

let frames t = t.capacity

let stats t = t.stats

let reset_stats t =
  t.stats.page_reads <- 0;
  t.stats.hits <- 0;
  t.stats.evictions <- 0

let resident t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key frame ->
      match !victim with
      | Some (_, f) when f.last_used <= frame.last_used -> ()
      | _ -> victim := Some (key, frame))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.stats.evictions <- t.stats.evictions + 1
  | None -> ()

let fetch t ~key ~load =
  match Hashtbl.find_opt t.table key with
  | Some frame ->
    frame.last_used <- tick t;
    t.stats.hits <- t.stats.hits + 1;
    frame.bytes
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let bytes = load () in
    t.stats.page_reads <- t.stats.page_reads + 1;
    Hashtbl.replace t.table key { bytes; last_used = tick t };
    bytes
