open Subql_relational
open Subql_gmdj

let eval ~pool ~base ~detail blocks =
  let schema = Heap_file.schema detail in
  let view = Gmdj.Maintain.create ~base ~detail:(Relation.empty schema) blocks in
  Heap_file.scan_pages detail ~pool (fun rows ->
      Gmdj.Maintain.insert_detail view (Relation.create ~check:false schema rows));
  Gmdj.Maintain.result view

let eval_chained ~pool ~base ~detail chain =
  List.fold_left (fun acc blocks -> eval ~pool ~base:acc ~detail blocks) base chain
