(** Conventional join/outer-join subquery unnesting — the baseline the
    paper compares against (Kim / Dayal / Muralikrishna / magic
    decorrelation lineage).

    Two translations are provided:

    - {!via_semijoins} — the classical plans: EXISTS and quantified
      subqueries in conjunctive position become semi-/anti-joins;
      scalar and aggregate comparisons become row-numbered left outer
      joins with grouping (including the classic COUNT-bug fix: counts
      are taken over a non-null marker column, never count-star, so an
      empty range yields 0 rather than 1).  Raises {!Not_applicable} on
      shapes the classical rewriting does not cover (disjunctions,
      nested or non-neighboring correlations).
    - {!via_joins} — a general unnesting: the query is first translated
      by {!Subql.Transform} and every GMDJ is then expanded into
      row-numbered outer joins + GROUP BY + back-joins.  Covers exactly
      the class the GMDJ algorithm covers, with join-based plans.

    {!best} tries the classical plans first and falls back to the
    general expansion. *)

open Subql_relational
module Algebra = Subql.Algebra

exception Not_applicable of string

val via_semijoins : Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t
(** @raise Not_applicable when the query is not a conjunction of plain
    atoms and one-level, at-most-neighboring subqueries. *)

val md_to_joins : lookup:(string -> Schema.t) -> Algebra.t -> Algebra.t
(** Replace every [Md] node by an equivalent join/outer-join/group-by
    subplan.  The input must not contain [Md_completed] nodes (expand
    before optimizing). *)

val via_joins : Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t

val best : Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t
