lib/unnest/unnest.ml: Aggregate Catalog Expr Format Gmdj List Printf Relation Schema Subql Subql_gmdj Subql_nested Subql_relational
