lib/unnest/unnest.mli: Catalog Schema Subql Subql_nested Subql_relational
