open Subql_relational

type config = {
  customers : int;
  orders : int;
  lineitems : int;
  nations : int;
  seed : int64;
}

let default_config =
  { customers = 1_500; orders = 15_000; lineitems = 60_000; nations = 25; seed = 7L }

let scaled sf =
  let scale base = max 1 (int_of_float (float_of_int base *. sf)) in
  {
    customers = scale 150_000;
    orders = scale 1_500_000;
    lineitems = scale 6_000_000;
    nations = 25;
    seed = 7L;
  }

let customer_schema =
  Schema.of_list
    [
      Schema.attr "c_custkey" Value.Tint;
      Schema.attr "c_nationkey" Value.Tint;
      Schema.attr "c_acctbal" Value.Tfloat;
      Schema.attr "c_mktsegment" Value.Tstring;
    ]

let orders_schema =
  Schema.of_list
    [
      Schema.attr "o_orderkey" Value.Tint;
      Schema.attr "o_custkey" Value.Tint;
      Schema.attr "o_totalprice" Value.Tfloat;
      Schema.attr "o_orderdate" Value.Tint;
      Schema.attr "o_orderpriority" Value.Tstring;
    ]

let lineitem_schema =
  Schema.of_list
    [
      Schema.attr "l_orderkey" Value.Tint;
      Schema.attr "l_partkey" Value.Tint;
      Schema.attr "l_quantity" Value.Tint;
      Schema.attr "l_extendedprice" Value.Tfloat;
      Schema.attr "l_shipdate" Value.Tint;
    ]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let generate config =
  let rng = Rng.create ~seed:config.seed in
  let customers =
    Array.init config.customers (fun i ->
        [|
          Value.Int (i + 1);
          Value.Int (Rng.int rng config.nations);
          Value.Float (Rng.float rng *. 11_000.0 -. 1_000.0);
          Value.Str (Rng.choose rng segments);
        |])
  in
  let orders =
    Array.init config.orders (fun i ->
        [|
          Value.Int (i + 1);
          Value.Int (1 + Rng.int rng config.customers);
          Value.Float (Rng.float rng *. 500_000.0);
          Value.Int (Rng.int rng 2_557);
          Value.Str (Rng.choose rng priorities);
        |])
  in
  let lineitems =
    Array.init config.lineitems (fun _ ->
        [|
          Value.Int (1 + Rng.int rng config.orders);
          Value.Int (1 + Rng.int rng 200_000);
          Value.Int (1 + Rng.int rng 50);
          Value.Float (Rng.float rng *. 100_000.0);
          Value.Int (Rng.int rng 2_557);
        |])
  in
  Catalog.of_list
    [
      ("Customer", Relation.create ~check:false customer_schema customers);
      ("Orders", Relation.create ~check:false orders_schema orders);
      ("Lineitem", Relation.create ~check:false lineitem_schema lineitems);
    ]
