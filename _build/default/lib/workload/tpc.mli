(** A TPC-R-flavoured database generator.

    The paper derived its test databases from the TPC(R) dbgen program;
    this module is the offline substitute: a customer / orders /
    lineitem star with the same knobs the experiments vary (outer and
    inner cardinalities, key skew).  Deterministic in the seed. *)

open Subql_relational

type config = {
  customers : int;
  orders : int;
  lineitems : int;
  nations : int;
  seed : int64;
}

val default_config : config
(** 1 500 customers, 15 000 orders, 60 000 lineitems, 25 nations —
    roughly TPC scale 0.01. *)

val scaled : float -> config
(** [scaled sf] mimics dbgen's scale factor. *)

val customer_schema : Schema.t

val orders_schema : Schema.t

val lineitem_schema : Schema.t

val generate : config -> Catalog.t
(** Catalog with tables ["Customer"], ["Orders"], ["Lineitem"]. *)
