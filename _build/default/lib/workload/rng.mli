(** Deterministic SplitMix64 pseudo-random generator.

    All workload generation is seeded so that every experiment is
    exactly reproducible; the generator is independent of OCaml's
    [Random] state. *)

type t

val create : seed:int64 -> t

val next : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bernoulli : t -> float -> bool

val choose : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit

val split : t -> t
(** An independent generator derived from the current state. *)
