lib/workload/netflow.mli: Catalog Schema Subql_relational
