lib/workload/rng.mli:
