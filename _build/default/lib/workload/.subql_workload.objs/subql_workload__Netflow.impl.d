lib/workload/netflow.ml: Array Catalog Printf Relation Rng Schema Subql_relational Value
