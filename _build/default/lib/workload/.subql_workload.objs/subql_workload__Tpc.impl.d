lib/workload/tpc.ml: Array Catalog Relation Rng Schema Subql_relational Value
