lib/workload/tpc.mli: Catalog Schema Subql_relational
